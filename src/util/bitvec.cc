#include "util/bitvec.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace pcause
{

namespace
{

constexpr std::size_t bitsPerWord = BitVec::wordBits;

std::size_t
wordCountFor(std::size_t nbits)
{
    return (nbits + bitsPerWord - 1) / bitsPerWord;
}

} // anonymous namespace

BitVec::BitVec(std::size_t nbits_, bool value)
    : nbits(nbits_),
      wordStore(wordCountFor(nbits_), value ? ~0ull : 0ull)
{
    trimTail();
}

void
BitVec::trimTail()
{
    std::size_t rem = nbits % bitsPerWord;
    if (rem != 0 && !wordStore.empty())
        wordStore.back() &= (~0ull >> (bitsPerWord - rem));
}

bool
BitVec::get(std::size_t idx) const
{
    PC_ASSERT(idx < nbits, "BitVec::get out of range");
    return (wordStore[idx / bitsPerWord] >> (idx % bitsPerWord)) & 1ull;
}

void
BitVec::set(std::size_t idx, bool value)
{
    PC_ASSERT(idx < nbits, "BitVec::set out of range");
    std::uint64_t mask = 1ull << (idx % bitsPerWord);
    if (value)
        wordStore[idx / bitsPerWord] |= mask;
    else
        wordStore[idx / bitsPerWord] &= ~mask;
}

void
BitVec::fill(bool value)
{
    for (auto &w : wordStore)
        w = value ? ~0ull : 0ull;
    trimTail();
}

void
BitVec::setWord(std::size_t wi, std::uint64_t w)
{
    PC_ASSERT(wi < wordStore.size(), "BitVec::setWord out of range");
    wordStore[wi] = w;
    if (wi + 1 == wordStore.size())
        trimTail();
}

void
BitVec::applyMasked(std::size_t wi, std::uint64_t mask, bool value)
{
    PC_ASSERT(wi < wordStore.size(), "BitVec::applyMasked out of range");
    // The mask must not reach past size(); enforcing it here (instead
    // of trimming after the fact) keeps this safe to call on disjoint
    // words from several threads at once.
    PC_ASSERT(wi + 1 < wordStore.size() || nbits % bitsPerWord == 0 ||
                  (mask >> (nbits % bitsPerWord)) == 0,
              "BitVec::applyMasked mask past end");
    if (value)
        wordStore[wi] |= mask;
    else
        wordStore[wi] &= ~mask;
}

std::size_t
BitVec::popcount() const
{
    return simd::popcountWords(wordStore.data(), wordStore.size());
}

std::vector<std::size_t>
BitVec::setBits() const
{
    std::vector<std::size_t> out;
    for (std::size_t wi = 0; wi < wordStore.size(); ++wi) {
        std::uint64_t w = wordStore[wi];
        while (w) {
            unsigned bit = std::countr_zero(w);
            out.push_back(wi * bitsPerWord + bit);
            w &= w - 1;
        }
    }
    return out;
}

std::size_t
BitVec::overlapCount(const BitVec &other) const
{
    PC_ASSERT(nbits == other.nbits, "BitVec size mismatch");
    return simd::andCountWords(wordStore.data(),
                               other.wordStore.data(),
                               wordStore.size());
}

std::size_t
BitVec::andNotCount(const BitVec &other) const
{
    PC_ASSERT(nbits == other.nbits, "BitVec size mismatch");
    return simd::andNotCountWords(wordStore.data(),
                                  other.wordStore.data(),
                                  wordStore.size());
}

std::size_t
BitVec::andNotCountBounded(const BitVec &other,
                           std::size_t limit) const
{
    PC_ASSERT(nbits == other.nbits, "BitVec size mismatch");
    // The bound is checked every simd::boundedBlock words on every
    // dispatch level: often enough to bail early, rarely enough
    // that the branch stays out of the inner loop's way — and part
    // of the kernel contract, so vector and scalar paths return
    // identical partial counts.
    return simd::andNotCountBoundedWords(wordStore.data(),
                                         other.wordStore.data(),
                                         wordStore.size(), limit);
}

BitVec &
BitVec::operator&=(const BitVec &other)
{
    PC_ASSERT(nbits == other.nbits, "BitVec size mismatch");
    for (std::size_t i = 0; i < wordStore.size(); ++i)
        wordStore[i] &= other.wordStore[i];
    return *this;
}

BitVec &
BitVec::operator|=(const BitVec &other)
{
    PC_ASSERT(nbits == other.nbits, "BitVec size mismatch");
    for (std::size_t i = 0; i < wordStore.size(); ++i)
        wordStore[i] |= other.wordStore[i];
    return *this;
}

BitVec &
BitVec::operator^=(const BitVec &other)
{
    PC_ASSERT(nbits == other.nbits, "BitVec size mismatch");
    for (std::size_t i = 0; i < wordStore.size(); ++i)
        wordStore[i] ^= other.wordStore[i];
    return *this;
}

bool
BitVec::operator==(const BitVec &other) const
{
    return nbits == other.nbits && wordStore == other.wordStore;
}

bool
BitVec::isSubsetOf(const BitVec &other) const
{
    PC_ASSERT(nbits == other.nbits, "BitVec size mismatch");
    for (std::size_t i = 0; i < wordStore.size(); ++i) {
        if (wordStore[i] & ~other.wordStore[i])
            return false;
    }
    return true;
}

BitVec
BitVec::slice(std::size_t start, std::size_t len) const
{
    PC_ASSERT(start + len <= nbits, "BitVec::slice out of range");
    BitVec out(len);
    const std::size_t fw = start / bitsPerWord;
    const std::size_t off = start % bitsPerWord;
    if (off == 0) {
        for (std::size_t i = 0; i < out.wordStore.size(); ++i)
            out.wordStore[i] = wordStore[fw + i];
    } else {
        // Funnel shift: each output word is stitched from the tail
        // of one source word and the head of the next.
        for (std::size_t i = 0; i < out.wordStore.size(); ++i) {
            std::uint64_t w = wordStore[fw + i] >> off;
            if (fw + i + 1 < wordStore.size())
                w |= wordStore[fw + i + 1] << (bitsPerWord - off);
            out.wordStore[i] = w;
        }
    }
    out.trimTail();
    return out;
}

void
BitVec::blit(std::size_t start, const BitVec &src)
{
    PC_ASSERT(start + src.nbits <= nbits, "BitVec::blit out of range");
    if (src.nbits == 0)
        return;
    const std::size_t fw = start / bitsPerWord;
    const std::size_t off = start % bitsPerWord;
    const std::size_t rem = src.nbits % bitsPerWord;
    const std::size_t src_words = src.wordStore.size();
    for (std::size_t i = 0; i < src_words; ++i) {
        // Valid bits of this source word (the last may be partial).
        const std::uint64_t m = (i + 1 == src_words && rem != 0)
            ? (~0ull >> (bitsPerWord - rem)) : ~0ull;
        const std::uint64_t v = src.wordStore[i] & m;
        wordStore[fw + i] =
            (wordStore[fw + i] & ~(m << off)) | (v << off);
        if (off != 0) {
            // The carry into the next destination word; mh is zero
            // when the source word fits entirely below the boundary.
            const std::uint64_t mh = m >> (bitsPerWord - off);
            if (mh) {
                wordStore[fw + i + 1] =
                    (wordStore[fw + i + 1] & ~mh) |
                    (v >> (bitsPerWord - off));
            }
        }
    }
}

std::size_t
BitVec::hammingDistance(const BitVec &other) const
{
    PC_ASSERT(nbits == other.nbits, "BitVec size mismatch");
    return simd::xorCountWords(wordStore.data(),
                               other.wordStore.data(),
                               wordStore.size());
}

std::string
BitVec::toString() const
{
    std::string out;
    out.reserve(nbits);
    for (std::size_t i = 0; i < nbits; ++i)
        out.push_back(get(i) ? '1' : '0');
    return out;
}

std::uint64_t
BitVec::hash() const
{
    std::uint64_t h = mix64(0x243f6a8885a308d3ull, nbits);
    for (auto w : wordStore)
        h = mix64(h, w);
    return h;
}

} // namespace pcause
