/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the simulator flows through Rng so that
 * experiments are exactly reproducible from a seed. The generator is
 * xoshiro256** seeded through splitmix64; independent substreams are
 * derived by hashing a parent seed with a stream key, which is how
 * per-chip and per-page randomness ("process variation") is produced
 * without materializing whole memories.
 */

#ifndef PCAUSE_UTIL_RNG_HH
#define PCAUSE_UTIL_RNG_HH

#include <cstdint>

namespace pcause
{

/** One splitmix64 step; also used as a 64-bit mixing/hash function. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless 64-bit mix of two values (for deriving stream keys). */
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * used with <random> distributions, but the common distributions are
 * provided as members to keep results platform-independent
 * (libstdc++'s normal_distribution is unspecified across versions).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit output. */
    result_type operator()() { return next(); }

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal deviate (Box-Muller, platform independent). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Log-normal deviate: exp(N(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Derive an independent substream keyed by @p key.
     *
     * Streams with distinct keys are statistically independent; the
     * same (seed, key) pair always yields the same stream. This is
     * the mechanism behind lazily modeled per-page error patterns.
     */
    Rng substream(std::uint64_t key) const;

    /** The seed this generator was constructed from. */
    std::uint64_t seed() const { return _seed; }

  private:
    std::uint64_t _seed;
    std::uint64_t s[4];
    double cachedGauss;
    bool hasCachedGauss;
};

} // namespace pcause

#endif // PCAUSE_UTIL_RNG_HH
