#include "util/csv.hh"

#include <sstream>

#include "util/logging.hh"

namespace pcause
{

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> header)
    : out(path), arity(header.size())
{
    if (!out)
        warn("CsvWriter: cannot open %s", path.c_str());
    writeRow(header);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    PC_ASSERT(cells.size() == arity, "CSV arity mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out << ',';
        out << quote(cells[i]);
    }
    out << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream ss;
        ss << v;
        text.push_back(ss.str());
    }
    writeRow(text);
}

std::string
CsvWriter::quote(const std::string &cell) const
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace pcause
