#include "util/mmap_file.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PCAUSE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pcause
{

namespace
{

void
setError(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
}

} // anonymous namespace

MmapFile &
MmapFile::operator=(MmapFile &&other) noexcept
{
    if (this != &other) {
        close();
        base = std::exchange(other.base, nullptr);
        length = std::exchange(other.length, 0);
        opened = std::exchange(other.opened, false);
        heapCopy = std::move(other.heapCopy);
        usingHeap = std::exchange(other.usingHeap, false);
    }
    return *this;
}

bool
MmapFile::open(const std::string &path, std::string *error)
{
    close();

#if PCAUSE_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, "cannot open " + path + ": " +
                            std::strerror(errno));
        return false;
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        setError(error, path + " is not a regular file");
        ::close(fd);
        return false;
    }
    length = static_cast<std::size_t>(st.st_size);
    if (length == 0) {
        // Zero-length mappings are invalid; an empty file is open
        // with a null span.
        ::close(fd);
        opened = true;
        return true;
    }
    void *map = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (map == MAP_FAILED) {
        length = 0;
        setError(error, "mmap of " + path + " failed: " +
                            std::strerror(errno));
        return false;
    }
    base = static_cast<const std::uint8_t *>(map);
    opened = true;
    return true;
#else
    // No mmap on this platform: fall back to reading the file whole.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        setError(error, "cannot open " + path);
        return false;
    }
    const std::streamsize bytes = in.tellg();
    in.seekg(0);
    heapCopy.resize(static_cast<std::size_t>(bytes));
    if (bytes > 0 &&
        !in.read(reinterpret_cast<char *>(heapCopy.data()), bytes)) {
        heapCopy.clear();
        setError(error, "short read of " + path);
        return false;
    }
    base = heapCopy.empty() ? nullptr : heapCopy.data();
    length = heapCopy.size();
    usingHeap = true;
    opened = true;
    return true;
#endif
}

void
MmapFile::close()
{
#if PCAUSE_HAVE_MMAP
    if (base != nullptr && !usingHeap) {
        ::munmap(const_cast<std::uint8_t *>(base), length);
    }
#endif
    heapCopy.clear();
    base = nullptr;
    length = 0;
    opened = false;
    usingHeap = false;
}

} // namespace pcause
