#include "util/simd.hh"

#include <atomic>
#include <bit>
#include <cstdlib>

#include "util/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#define PC_SIMD_X86 1
#include <immintrin.h>
// GCC's _mm512_undefined_*()-based intrinsics (broadcast, extract,
// reduce) trip spurious -W(maybe-)uninitialized reports when inlined
// into target("avx512...") functions; this TU is all kernels, so
// silence them file-wide.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#else
#define PC_SIMD_X86 0
#endif

// The AVX-512 paths want F (512-bit integer ops), BW (byte
// shuffles/SAD for popcount), DQ (64-bit multiplies for the MinHash
// mixer), and VL (256-bit masked ops for the 32-bit min-reductions).
#define PC_AVX512_TARGET "avx512f,avx512bw,avx512dq,avx512vl"

namespace pcause
{
namespace simd
{

namespace
{

// splitmix64's constants, restated here so the MinHash kernels can
// evaluate the same function lane-parallel. util/rng.cc is the
// source of truth; prop_simd pins the factored form against mix64().
constexpr std::uint64_t golden = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t mixA = 0xbf58476d1ce4e5b9ull;
constexpr std::uint64_t mixB = 0x94d049bb133111ebull;
constexpr std::uint64_t mixC = 0xc2b2ae3d27d4eb4full;

/** splitmix64's output avalanche (one scramble of a prepared state). */
inline std::uint64_t
scramble(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * mixA;
    z = (z ^ (z >> 27)) * mixB;
    return z ^ (z >> 31);
}

/**
 * Hash one set-bit position into the per-position factor shared by
 * all permutation lanes: mix64(key, pos) == scramble((ha ^
 * posFactor(pos)) + golden) with ha = scramble(key + golden).
 */
inline std::uint64_t
posFactor(std::uint64_t pos)
{
    return scramble(pos + golden) * mixC;
}

enum CountOp
{
    opPop,
    opAnd,
    opAndNot,
    opXor,
};

inline std::uint64_t
combineScalar(CountOp op, std::uint64_t a, std::uint64_t b)
{
    switch (op) {
      case opPop:
        return a;
      case opAnd:
        return a & b;
      case opAndNot:
        return a & ~b;
      default:
        return a ^ b;
    }
}

// ---------------------------------------------------------------
// Scalar reference paths. These are the semantics; the vector paths
// below must reproduce them bit for bit.
// ---------------------------------------------------------------

template <CountOp op>
std::size_t
countWordsScalar(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += std::popcount(combineScalar(op, a[i], b ? b[i] : 0));
    return total;
}

std::size_t
andNotCountBoundedScalar(const std::uint64_t *a, const std::uint64_t *b,
                         std::size_t n, std::size_t limit)
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; i += boundedBlock) {
        const std::size_t stop = std::min(n, i + boundedBlock);
        for (std::size_t j = i; j < stop; ++j)
            total += std::popcount(a[j] & ~b[j]);
        if (total > limit)
            return total;
    }
    return total;
}

std::size_t
buildChargedWordsScalar(const std::uint64_t *content, std::size_t n,
                        std::uint64_t defw, const float *word_min_eff,
                        double stress, std::uint64_t *charged_out)
{
    std::size_t nonzero = 0;
    for (std::size_t i = 0; i < n; ++i) {
        // The float bound is promoted to double exactly as the
        // per-word scalar engine compares it.
        const std::uint64_t charged =
            stress < static_cast<double>(word_min_eff[i])
                ? 0
                : content[i] ^ defw;
        charged_out[i] = charged;
        nonzero += charged != 0;
    }
    return nonzero;
}

inline bool
sparseBitSet(const std::uint64_t *words, std::uint32_t pos)
{
    return (words[pos >> 6] >> (pos & 63)) & 1ull;
}

std::size_t
sparseMissCountBoundedScalar(const std::uint64_t *words,
                             const std::uint32_t *pos, std::size_t n,
                             std::size_t limit)
{
    std::size_t misses = 0;
    for (std::size_t i = 0; i < n; i += boundedBlock) {
        const std::size_t stop = std::min(n, i + boundedBlock);
        for (std::size_t j = i; j < stop; ++j)
            misses += !sparseBitSet(words, pos[j]);
        if (misses > limit)
            return misses;
    }
    return misses;
}

SparseInterScan
sparseInterCountBoundedScalar(const std::uint64_t *words,
                              const std::uint32_t *pos, std::size_t n,
                              std::size_t es_weight, std::size_t limit)
{
    std::size_t inter = 0;
    for (std::size_t i = 0; i < n; i += boundedBlock) {
        const std::size_t stop = std::min(n, i + boundedBlock);
        for (std::size_t j = i; j < stop; ++j)
            inter += sparseBitSet(words, pos[j]);
        // Certified lower bound on the final miss count; compare
        // without risking unsigned underflow on the right.
        if (es_weight - inter > limit + (n - stop))
            return {inter, stop};
    }
    return {inter, n};
}

void
minhashSignatureScalar(const std::uint64_t *words, std::size_t n,
                       const std::uint64_t *ha, std::uint32_t k,
                       std::uint32_t *sig)
{
    for (std::size_t wi = 0; wi < n; ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            const std::uint64_t p =
                wi * 64 + static_cast<unsigned>(std::countr_zero(w));
            w &= w - 1;
            const std::uint64_t t = posFactor(p);
            for (std::uint32_t j = 0; j < k; ++j) {
                const auto h = static_cast<std::uint32_t>(
                    scramble((ha[j] ^ t) + golden));
                if (h < sig[j])
                    sig[j] = h;
            }
        }
    }
}

void
minhashSketchScalar(const std::uint64_t *words, std::size_t n,
                    const std::uint64_t *ha, std::uint32_t k,
                    std::uint32_t *primary, std::uint32_t *second)
{
    for (std::size_t wi = 0; wi < n; ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            const std::uint64_t p =
                wi * 64 + static_cast<unsigned>(std::countr_zero(w));
            w &= w - 1;
            const std::uint64_t t = posFactor(p);
            for (std::uint32_t j = 0; j < k; ++j) {
                const auto h = static_cast<std::uint32_t>(
                    scramble((ha[j] ^ t) + golden));
                if (h < primary[j]) {
                    second[j] = primary[j];
                    primary[j] = h;
                } else if (h < second[j] && h != primary[j]) {
                    second[j] = h;
                }
            }
        }
    }
}

#if PC_SIMD_X86

// ---------------------------------------------------------------
// AVX2 paths (4 x 64-bit lanes). Popcount is the classic pshufb
// nibble LUT summed per 64-bit lane with SAD.
// ---------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i
popcnt256(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nib = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, nib);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
    const __m256i cnt =
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                        _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::uint64_t
hsum64x4(__m256i v)
{
    const __m128i s =
        _mm_add_epi64(_mm256_castsi256_si128(v),
                      _mm256_extracti128_si256(v, 1));
    return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
           static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

__attribute__((target("avx2"))) inline std::uint32_t
hsum32x8(__m256i v)
{
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
    return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

template <CountOp op>
__attribute__((target("avx2"))) inline __m256i
combine256(const std::uint64_t *a, const std::uint64_t *b,
           std::size_t i)
{
    const __m256i av = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(a + i));
    if constexpr (op == opPop)
        return av;
    const __m256i bv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(b + i));
    if constexpr (op == opAnd)
        return _mm256_and_si256(av, bv);
    else if constexpr (op == opAndNot)
        return _mm256_andnot_si256(bv, av); // ~bv & av
    else
        return _mm256_xor_si256(av, bv);
}

template <CountOp op>
__attribute__((target("avx2"))) std::size_t
countWordsAvx2(const std::uint64_t *a, const std::uint64_t *b,
               std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = _mm256_add_epi64(acc, popcnt256(combine256<op>(a, b, i)));
    std::size_t total = hsum64x4(acc);
    for (; i < n; ++i)
        total += std::popcount(combineScalar(op, a[i], b ? b[i] : 0));
    return total;
}

__attribute__((target("avx2"))) std::size_t
andNotCountBoundedAvx2(const std::uint64_t *a, const std::uint64_t *b,
                       std::size_t n, std::size_t limit)
{
    static_assert(boundedBlock % 4 == 0);
    std::size_t total = 0;
    std::size_t i = 0;
    // Same 16-word blocks as the scalar path: partial sums at every
    // block boundary are identical, so the early-exit decision and
    // any pruned partial count cannot diverge.
    for (; i + boundedBlock <= n; i += boundedBlock) {
        __m256i acc = _mm256_setzero_si256();
        for (std::size_t v = 0; v < boundedBlock; v += 4) {
            acc = _mm256_add_epi64(
                acc, popcnt256(combine256<opAndNot>(a, b, i + v)));
        }
        total += hsum64x4(acc);
        if (total > limit)
            return total;
    }
    for (; i < n; ++i)
        total += std::popcount(a[i] & ~b[i]);
    return total;
}

__attribute__((target("avx2"))) std::size_t
buildChargedWordsAvx2(const std::uint64_t *content, std::size_t n,
                      std::uint64_t defw, const float *word_min_eff,
                      double stress, std::uint64_t *charged_out)
{
    const __m256i defv =
        _mm256_set1_epi64x(static_cast<long long>(defw));
    const __m256d sv = _mm256_set1_pd(stress);
    const __m256i zero = _mm256_setzero_si256();
    std::size_t nonzero = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // Promote the float bounds to double before comparing, so
        // the verdict is bit-identical to the scalar engine's
        // `stress < double(word_min_eff[i])`.
        const __m256d bounds =
            _mm256_cvtps_pd(_mm_loadu_ps(word_min_eff + i));
        const __m256d keep =
            _mm256_cmp_pd(sv, bounds, _CMP_GE_OQ);
        const __m256i charged = _mm256_and_si256(
            _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(content + i)),
                defv),
            _mm256_castpd_si256(keep));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(charged_out + i), charged);
        const int zmask = _mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpeq_epi64(charged, zero)));
        nonzero += 4 - std::popcount(static_cast<unsigned>(zmask));
    }
    for (; i < n; ++i) {
        const std::uint64_t charged =
            stress < static_cast<double>(word_min_eff[i])
                ? 0
                : content[i] ^ defw;
        charged_out[i] = charged;
        nonzero += charged != 0;
    }
    return nonzero;
}

/**
 * Gather the addressed bits of 8 positions as 0/1 in epi32 lanes.
 * The dense operand is viewed as little-endian uint32s: position p
 * lives in element p>>5, bit p&31 — exact on x86.
 */
__attribute__((target("avx2"))) inline __m256i
gatherBits8(const std::uint64_t *words, const std::uint32_t *pos)
{
    const __m256i p = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(pos));
    const __m256i elems = _mm256_i32gather_epi32(
        reinterpret_cast<const int *>(words),
        _mm256_srli_epi32(p, 5), 4);
    return _mm256_and_si256(
        _mm256_srlv_epi32(elems,
                          _mm256_and_si256(p, _mm256_set1_epi32(31))),
        _mm256_set1_epi32(1));
}

__attribute__((target("avx2"))) std::size_t
sparseMissCountBoundedAvx2(const std::uint64_t *words,
                           const std::uint32_t *pos, std::size_t n,
                           std::size_t limit)
{
    std::size_t misses = 0;
    for (std::size_t i = 0; i < n; i += boundedBlock) {
        const std::size_t stop = std::min(n, i + boundedBlock);
        std::size_t j = i;
        for (; j + 8 <= stop; j += 8) {
            misses += 8 - hsum32x8(gatherBits8(words, pos + j));
        }
        for (; j < stop; ++j)
            misses += !sparseBitSet(words, pos[j]);
        if (misses > limit)
            return misses;
    }
    return misses;
}

__attribute__((target("avx2"))) SparseInterScan
sparseInterCountBoundedAvx2(const std::uint64_t *words,
                            const std::uint32_t *pos, std::size_t n,
                            std::size_t es_weight, std::size_t limit)
{
    std::size_t inter = 0;
    for (std::size_t i = 0; i < n; i += boundedBlock) {
        const std::size_t stop = std::min(n, i + boundedBlock);
        std::size_t j = i;
        for (; j + 8 <= stop; j += 8)
            inter += hsum32x8(gatherBits8(words, pos + j));
        for (; j < stop; ++j)
            inter += sparseBitSet(words, pos[j]);
        if (es_weight - inter > limit + (n - stop))
            return {inter, stop};
    }
    return {inter, n};
}

/** Lane-parallel z * c mod 2^64 (no native 64-bit mullo on AVX2). */
__attribute__((target("avx2"))) inline __m256i
mullo64c(__m256i z, std::uint64_t c)
{
    const __m256i cl =
        _mm256_set1_epi64x(static_cast<long long>(c));
    const __m256i ch =
        _mm256_set1_epi64x(static_cast<long long>(c >> 32));
    const __m256i lo = _mm256_mul_epu32(z, cl);
    const __m256i cross = _mm256_add_epi64(
        _mm256_mul_epu32(_mm256_srli_epi64(z, 32), cl),
        _mm256_mul_epu32(z, ch));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i
scramble256(__m256i z)
{
    z = mullo64c(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), mixA);
    z = mullo64c(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), mixB);
    return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/** Low 32 bits of each 64-bit lane, packed into a __m128i. */
__attribute__((target("avx2"))) inline __m128i
low32x4(__m256i z)
{
    return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
        z, _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6)));
}

/** Four permutation-lane hashes of one position factor @p tv. */
__attribute__((target("avx2"))) inline __m128i
minhash4(const std::uint64_t *ha, std::uint32_t j, __m256i tv,
         __m256i gold)
{
    const __m256i z = _mm256_add_epi64(
        _mm256_xor_si256(_mm256_loadu_si256(
                             reinterpret_cast<const __m256i *>(ha + j)),
                         tv),
        gold);
    return low32x4(scramble256(z));
}

/** Unsigned a < b per epi32 lane. */
__attribute__((target("avx2"))) inline __m128i
ltu32x4(__m128i a, __m128i b)
{
    const __m128i geq = _mm_cmpeq_epi32(_mm_max_epu32(a, b), a);
    return _mm_andnot_si128(geq, _mm_set1_epi32(-1));
}

__attribute__((target("avx2"))) void
minhashSignatureAvx2(const std::uint64_t *words, std::size_t n,
                     const std::uint64_t *ha, std::uint32_t k,
                     std::uint32_t *sig)
{
    const __m256i gold =
        _mm256_set1_epi64x(static_cast<long long>(golden));
    for (std::size_t wi = 0; wi < n; ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            const std::uint64_t p =
                wi * 64 + static_cast<unsigned>(std::countr_zero(w));
            w &= w - 1;
            const std::uint64_t t = posFactor(p);
            const __m256i tv =
                _mm256_set1_epi64x(static_cast<long long>(t));
            std::uint32_t j = 0;
            for (; j + 4 <= k; j += 4) {
                const __m128i h = minhash4(ha, j, tv, gold);
                const __m128i cur = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(sig + j));
                _mm_storeu_si128(
                    reinterpret_cast<__m128i *>(sig + j),
                    _mm_min_epu32(cur, h));
            }
            for (; j < k; ++j) {
                const auto h = static_cast<std::uint32_t>(
                    scramble((ha[j] ^ t) + golden));
                if (h < sig[j])
                    sig[j] = h;
            }
        }
    }
}

__attribute__((target("avx2"))) void
minhashSketchAvx2(const std::uint64_t *words, std::size_t n,
                  const std::uint64_t *ha, std::uint32_t k,
                  std::uint32_t *primary, std::uint32_t *second)
{
    const __m256i gold =
        _mm256_set1_epi64x(static_cast<long long>(golden));
    for (std::size_t wi = 0; wi < n; ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            const std::uint64_t p =
                wi * 64 + static_cast<unsigned>(std::countr_zero(w));
            w &= w - 1;
            const std::uint64_t t = posFactor(p);
            const __m256i tv =
                _mm256_set1_epi64x(static_cast<long long>(t));
            std::uint32_t j = 0;
            for (; j + 4 <= k; j += 4) {
                const __m128i h = minhash4(ha, j, tv, gold);
                const __m128i pv = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(primary + j));
                const __m128i sv = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(second + j));
                // Branch-free transcription of the scalar two-min
                // update: h<p shifts p into second; else h lands in
                // second when h<s and h!=p.
                const __m128i ltp = ltu32x4(h, pv);
                const __m128i cond2 = _mm_andnot_si128(
                    _mm_cmpeq_epi32(h, pv), ltu32x4(h, sv));
                __m128i new_s = _mm_blendv_epi8(sv, h, cond2);
                new_s = _mm_blendv_epi8(new_s, pv, ltp);
                _mm_storeu_si128(
                    reinterpret_cast<__m128i *>(primary + j),
                    _mm_min_epu32(h, pv));
                _mm_storeu_si128(
                    reinterpret_cast<__m128i *>(second + j), new_s);
            }
            for (; j < k; ++j) {
                const auto h = static_cast<std::uint32_t>(
                    scramble((ha[j] ^ t) + golden));
                if (h < primary[j]) {
                    second[j] = primary[j];
                    primary[j] = h;
                } else if (h < second[j] && h != primary[j]) {
                    second[j] = h;
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// AVX-512 paths (8 x 64-bit lanes). Same structure; popcount uses
// the BW byte shuffle (no vpopcntdq requirement), the MinHash mixer
// uses DQ's native 64-bit mullo, min-reductions use VL masks.
// ---------------------------------------------------------------

__attribute__((target(PC_AVX512_TARGET))) inline __m512i
popcnt512(__m512i v)
{
    const __m512i lut = _mm512_broadcast_i32x4(_mm_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    const __m512i nib = _mm512_set1_epi8(0x0f);
    const __m512i lo = _mm512_and_si512(v, nib);
    const __m512i hi =
        _mm512_and_si512(_mm512_srli_epi16(v, 4), nib);
    const __m512i cnt =
        _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                        _mm512_shuffle_epi8(lut, hi));
    return _mm512_sad_epu8(cnt, _mm512_setzero_si512());
}

template <CountOp op>
__attribute__((target(PC_AVX512_TARGET))) inline __m512i
combine512(const std::uint64_t *a, const std::uint64_t *b,
           std::size_t i)
{
    const __m512i av = _mm512_loadu_si512(a + i);
    if constexpr (op == opPop)
        return av;
    const __m512i bv = _mm512_loadu_si512(b + i);
    if constexpr (op == opAnd)
        return _mm512_and_si512(av, bv);
    else if constexpr (op == opAndNot)
        return _mm512_andnot_si512(bv, av);
    else
        return _mm512_xor_si512(av, bv);
}

template <CountOp op>
__attribute__((target(PC_AVX512_TARGET))) std::size_t
countWordsAvx512(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm512_add_epi64(acc, popcnt512(combine512<op>(a, b, i)));
    std::size_t total =
        static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
    for (; i < n; ++i)
        total += std::popcount(combineScalar(op, a[i], b ? b[i] : 0));
    return total;
}

__attribute__((target(PC_AVX512_TARGET))) std::size_t
andNotCountBoundedAvx512(const std::uint64_t *a, const std::uint64_t *b,
                         std::size_t n, std::size_t limit)
{
    static_assert(boundedBlock % 8 == 0);
    std::size_t total = 0;
    std::size_t i = 0;
    for (; i + boundedBlock <= n; i += boundedBlock) {
        __m512i acc = _mm512_setzero_si512();
        for (std::size_t v = 0; v < boundedBlock; v += 8) {
            acc = _mm512_add_epi64(
                acc, popcnt512(combine512<opAndNot>(a, b, i + v)));
        }
        total += static_cast<std::uint64_t>(
            _mm512_reduce_add_epi64(acc));
        if (total > limit)
            return total;
    }
    for (; i < n; ++i)
        total += std::popcount(a[i] & ~b[i]);
    return total;
}

__attribute__((target(PC_AVX512_TARGET))) std::size_t
buildChargedWordsAvx512(const std::uint64_t *content, std::size_t n,
                        std::uint64_t defw, const float *word_min_eff,
                        double stress, std::uint64_t *charged_out)
{
    const __m512i defv =
        _mm512_set1_epi64(static_cast<long long>(defw));
    const __m512d sv = _mm512_set1_pd(stress);
    std::size_t nonzero = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d bounds =
            _mm512_cvtps_pd(_mm256_loadu_ps(word_min_eff + i));
        const __mmask8 keep =
            _mm512_cmp_pd_mask(sv, bounds, _CMP_GE_OQ);
        const __m512i charged = _mm512_maskz_xor_epi64(
            keep, _mm512_loadu_si512(content + i), defv);
        _mm512_storeu_si512(charged_out + i, charged);
        nonzero += std::popcount(static_cast<unsigned>(
            _mm512_test_epi64_mask(charged, charged)));
    }
    for (; i < n; ++i) {
        const std::uint64_t charged =
            stress < static_cast<double>(word_min_eff[i])
                ? 0
                : content[i] ^ defw;
        charged_out[i] = charged;
        nonzero += charged != 0;
    }
    return nonzero;
}

/** One 16-position block's set-bit count via a 512-bit gather. */
__attribute__((target(PC_AVX512_TARGET))) inline std::uint32_t
gatherBitSum16(const std::uint64_t *words, const std::uint32_t *pos)
{
    const __m512i p = _mm512_loadu_si512(pos);
    const __m512i elems = _mm512_i32gather_epi32(
        _mm512_srli_epi32(p, 5), words, 4);
    const __m512i bits = _mm512_and_si512(
        _mm512_srlv_epi32(elems,
                          _mm512_and_si512(p, _mm512_set1_epi32(31))),
        _mm512_set1_epi32(1));
    return static_cast<std::uint32_t>(_mm512_reduce_add_epi32(bits));
}

__attribute__((target(PC_AVX512_TARGET))) std::size_t
sparseMissCountBoundedAvx512(const std::uint64_t *words,
                             const std::uint32_t *pos, std::size_t n,
                             std::size_t limit)
{
    static_assert(boundedBlock == 16);
    std::size_t misses = 0;
    std::size_t i = 0;
    for (; i + boundedBlock <= n; i += boundedBlock) {
        misses += boundedBlock - gatherBitSum16(words, pos + i);
        if (misses > limit)
            return misses;
    }
    if (i < n) {
        for (; i < n; ++i)
            misses += !sparseBitSet(words, pos[i]);
        if (misses > limit)
            return misses;
    }
    return misses;
}

__attribute__((target(PC_AVX512_TARGET))) SparseInterScan
sparseInterCountBoundedAvx512(const std::uint64_t *words,
                              const std::uint32_t *pos, std::size_t n,
                              std::size_t es_weight, std::size_t limit)
{
    std::size_t inter = 0;
    std::size_t i = 0;
    for (; i + boundedBlock <= n; i += boundedBlock) {
        inter += gatherBitSum16(words, pos + i);
        const std::size_t stop = i + boundedBlock;
        if (es_weight - inter > limit + (n - stop))
            return {inter, stop};
    }
    if (i < n) {
        for (; i < n; ++i)
            inter += sparseBitSet(words, pos[i]);
        if (es_weight - inter > limit)
            return {inter, n};
    }
    return {inter, n};
}

__attribute__((target(PC_AVX512_TARGET))) inline __m512i
scramble512(__m512i z)
{
    const __m512i ma = _mm512_set1_epi64(static_cast<long long>(mixA));
    const __m512i mb = _mm512_set1_epi64(static_cast<long long>(mixB));
    z = _mm512_mullo_epi64(
        _mm512_xor_si512(z, _mm512_srli_epi64(z, 30)), ma);
    z = _mm512_mullo_epi64(
        _mm512_xor_si512(z, _mm512_srli_epi64(z, 27)), mb);
    return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

/** Eight permutation-lane hashes of one position factor @p tv. */
__attribute__((target(PC_AVX512_TARGET))) inline __m256i
minhash8(const std::uint64_t *ha, std::uint32_t j, __m512i tv,
         __m512i gold)
{
    const __m512i z = _mm512_add_epi64(
        _mm512_xor_si512(_mm512_loadu_si512(ha + j), tv), gold);
    return _mm512_cvtepi64_epi32(scramble512(z));
}

__attribute__((target(PC_AVX512_TARGET))) void
minhashSignatureAvx512(const std::uint64_t *words, std::size_t n,
                       const std::uint64_t *ha, std::uint32_t k,
                       std::uint32_t *sig)
{
    const __m512i gold =
        _mm512_set1_epi64(static_cast<long long>(golden));
    for (std::size_t wi = 0; wi < n; ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            const std::uint64_t p =
                wi * 64 + static_cast<unsigned>(std::countr_zero(w));
            w &= w - 1;
            const std::uint64_t t = posFactor(p);
            const __m512i tv =
                _mm512_set1_epi64(static_cast<long long>(t));
            std::uint32_t j = 0;
            for (; j + 8 <= k; j += 8) {
                const __m256i h = minhash8(ha, j, tv, gold);
                const __m256i cur = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(sig + j));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(sig + j),
                    _mm256_min_epu32(cur, h));
            }
            for (; j < k; ++j) {
                const auto h = static_cast<std::uint32_t>(
                    scramble((ha[j] ^ t) + golden));
                if (h < sig[j])
                    sig[j] = h;
            }
        }
    }
}

__attribute__((target(PC_AVX512_TARGET))) void
minhashSketchAvx512(const std::uint64_t *words, std::size_t n,
                    const std::uint64_t *ha, std::uint32_t k,
                    std::uint32_t *primary, std::uint32_t *second)
{
    const __m512i gold =
        _mm512_set1_epi64(static_cast<long long>(golden));
    for (std::size_t wi = 0; wi < n; ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            const std::uint64_t p =
                wi * 64 + static_cast<unsigned>(std::countr_zero(w));
            w &= w - 1;
            const std::uint64_t t = posFactor(p);
            const __m512i tv =
                _mm512_set1_epi64(static_cast<long long>(t));
            std::uint32_t j = 0;
            for (; j + 8 <= k; j += 8) {
                const __m256i h = minhash8(ha, j, tv, gold);
                const __m256i pv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(primary + j));
                const __m256i sv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(second + j));
                const __mmask8 ltp = _mm256_cmplt_epu32_mask(h, pv);
                const __mmask8 cond2 = static_cast<__mmask8>(
                    _mm256_cmplt_epu32_mask(h, sv) &
                    ~_mm256_cmpeq_epu32_mask(h, pv));
                __m256i new_s =
                    _mm256_mask_blend_epi32(cond2, sv, h);
                new_s = _mm256_mask_blend_epi32(ltp, new_s, pv);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(primary + j),
                    _mm256_min_epu32(h, pv));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(second + j), new_s);
            }
            for (; j < k; ++j) {
                const auto h = static_cast<std::uint32_t>(
                    scramble((ha[j] ^ t) + golden));
                if (h < primary[j]) {
                    second[j] = primary[j];
                    primary[j] = h;
                } else if (h < second[j] && h != primary[j]) {
                    second[j] = h;
                }
            }
        }
    }
}

#endif // PC_SIMD_X86

// ---------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------

std::atomic<int> activeLvl{static_cast<int>(Level::Scalar)};

/** Parse and apply a level spec; "" on success, else diagnostic. */
std::string
trySelect(const std::string &spec)
{
    Level level;
    if (spec == "auto") {
        level = bestAvailableLevel();
    } else if (spec == "scalar") {
        level = Level::Scalar;
    } else if (spec == "avx2") {
        level = Level::Avx2;
    } else if (spec == "avx512") {
        level = Level::Avx512;
    } else {
        return "unknown SIMD level '" + spec +
               "' (expected scalar, avx2, avx512, or auto)";
    }
    if (!levelAvailable(level)) {
        return std::string("SIMD level '") + levelName(level) +
               "' is not supported by this CPU";
    }
    activeLvl.store(static_cast<int>(level),
                    std::memory_order_relaxed);
    return "";
}

} // anonymous namespace

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Scalar:
        return "scalar";
      case Level::Avx2:
        return "avx2";
      case Level::Avx512:
        return "avx512";
      default:
        panic("unhandled SIMD level");
    }
}

bool
levelAvailable(Level level)
{
    if (level == Level::Scalar)
        return true;
#if PC_SIMD_X86
    // __builtin_cpu_supports checks both the CPUID feature bits and
    // OS support (XCR0) via libgcc's resolver.
    static const bool cpuInit = [] {
        __builtin_cpu_init();
        return true;
    }();
    (void)cpuInit;
    switch (level) {
      case Level::Avx2:
        return __builtin_cpu_supports("avx2");
      case Level::Avx512:
        return __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512dq") &&
               __builtin_cpu_supports("avx512vl");
      default:
        return false;
    }
#else
    return false;
#endif
}

Level
bestAvailableLevel()
{
    if (levelAvailable(Level::Avx512))
        return Level::Avx512;
    if (levelAvailable(Level::Avx2))
        return Level::Avx2;
    return Level::Scalar;
}

void
applyEnvSpec(const char *spec)
{
    const std::string s = (spec && *spec) ? spec : "auto";
    const std::string err = trySelect(s);
    if (!err.empty())
        fatal("PCAUSE_SIMD: %s", err.c_str());
}

Level
activeLevel()
{
    // One-time env initialization; selectLevel() may override later.
    static const bool envDone = [] {
        applyEnvSpec(std::getenv("PCAUSE_SIMD"));
        return true;
    }();
    (void)envDone;
    return static_cast<Level>(
        activeLvl.load(std::memory_order_relaxed));
}

std::string
selectLevel(const std::string &spec)
{
    activeLevel(); // settle env precedence before overriding
    return trySelect(spec);
}

std::size_t
popcountWords(const std::uint64_t *words, std::size_t n, Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512)
        return countWordsAvx512<opPop>(words, nullptr, n);
    if (level == Level::Avx2)
        return countWordsAvx2<opPop>(words, nullptr, n);
#else
    (void)level;
#endif
    return countWordsScalar<opPop>(words, nullptr, n);
}

std::size_t
andCountWords(const std::uint64_t *a, const std::uint64_t *b,
              std::size_t n, Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512)
        return countWordsAvx512<opAnd>(a, b, n);
    if (level == Level::Avx2)
        return countWordsAvx2<opAnd>(a, b, n);
#else
    (void)level;
#endif
    return countWordsScalar<opAnd>(a, b, n);
}

std::size_t
andNotCountWords(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n, Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512)
        return countWordsAvx512<opAndNot>(a, b, n);
    if (level == Level::Avx2)
        return countWordsAvx2<opAndNot>(a, b, n);
#else
    (void)level;
#endif
    return countWordsScalar<opAndNot>(a, b, n);
}

std::size_t
xorCountWords(const std::uint64_t *a, const std::uint64_t *b,
              std::size_t n, Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512)
        return countWordsAvx512<opXor>(a, b, n);
    if (level == Level::Avx2)
        return countWordsAvx2<opXor>(a, b, n);
#else
    (void)level;
#endif
    return countWordsScalar<opXor>(a, b, n);
}

std::size_t
andNotCountBoundedWords(const std::uint64_t *a, const std::uint64_t *b,
                        std::size_t n, std::size_t limit, Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512)
        return andNotCountBoundedAvx512(a, b, n, limit);
    if (level == Level::Avx2)
        return andNotCountBoundedAvx2(a, b, n, limit);
#else
    (void)level;
#endif
    return andNotCountBoundedScalar(a, b, n, limit);
}

std::size_t
buildChargedWords(const std::uint64_t *content, std::size_t n,
                  std::uint64_t defw, const float *word_min_eff,
                  double stress, std::uint64_t *charged_out,
                  Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512) {
        return buildChargedWordsAvx512(content, n, defw, word_min_eff,
                                       stress, charged_out);
    }
    if (level == Level::Avx2) {
        return buildChargedWordsAvx2(content, n, defw, word_min_eff,
                                     stress, charged_out);
    }
#else
    (void)level;
#endif
    return buildChargedWordsScalar(content, n, defw, word_min_eff,
                                   stress, charged_out);
}

std::size_t
sparseMissCountBounded(const std::uint64_t *words,
                       const std::uint32_t *pos, std::size_t n,
                       std::size_t limit, Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512)
        return sparseMissCountBoundedAvx512(words, pos, n, limit);
    if (level == Level::Avx2)
        return sparseMissCountBoundedAvx2(words, pos, n, limit);
#else
    (void)level;
#endif
    return sparseMissCountBoundedScalar(words, pos, n, limit);
}

SparseInterScan
sparseInterCountBounded(const std::uint64_t *words,
                        const std::uint32_t *pos, std::size_t n,
                        std::size_t es_weight, std::size_t limit,
                        Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512) {
        return sparseInterCountBoundedAvx512(words, pos, n, es_weight,
                                             limit);
    }
    if (level == Level::Avx2) {
        return sparseInterCountBoundedAvx2(words, pos, n, es_weight,
                                           limit);
    }
#else
    (void)level;
#endif
    return sparseInterCountBoundedScalar(words, pos, n, es_weight,
                                         limit);
}

void
prepareMinhashKeys(const std::uint64_t *keys, std::uint32_t k,
                   std::uint64_t *ha)
{
    for (std::uint32_t j = 0; j < k; ++j)
        ha[j] = scramble(keys[j] + golden);
}

void
minhashSignatureWords(const std::uint64_t *words, std::size_t n,
                      const std::uint64_t *ha, std::uint32_t k,
                      std::uint32_t *sig, Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512)
        return minhashSignatureAvx512(words, n, ha, k, sig);
    if (level == Level::Avx2)
        return minhashSignatureAvx2(words, n, ha, k, sig);
#else
    (void)level;
#endif
    return minhashSignatureScalar(words, n, ha, k, sig);
}

void
minhashSketchWords(const std::uint64_t *words, std::size_t n,
                   const std::uint64_t *ha, std::uint32_t k,
                   std::uint32_t *primary, std::uint32_t *second,
                   Level level)
{
#if PC_SIMD_X86
    if (level == Level::Avx512)
        return minhashSketchAvx512(words, n, ha, k, primary, second);
    if (level == Level::Avx2)
        return minhashSketchAvx2(words, n, ha, k, primary, second);
#else
    (void)level;
#endif
    return minhashSketchScalar(words, n, ha, k, primary, second);
}

} // namespace simd
} // namespace pcause
