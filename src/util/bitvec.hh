/**
 * @file
 * Dense dynamic bit vector.
 *
 * BitVec is the central data type of the library: memory contents,
 * error strings, and fingerprints are all bit vectors. It provides
 * the bulk boolean operations the Probable Cause algorithms are built
 * from (XOR for error extraction, AND for fingerprint intersection)
 * plus fast population counts, set-bit iteration, and a word-span
 * API so callers (the DRAM decay engine in particular) can build and
 * apply 64-bit masks without going through per-bit accessors.
 */

#ifndef PCAUSE_UTIL_BITVEC_HH
#define PCAUSE_UTIL_BITVEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/aligned.hh"

namespace pcause
{

/** Dense, heap-allocated vector of bits with bulk boolean ops. */
class BitVec
{
  public:
    /** Bits per backing word. */
    static constexpr std::size_t wordBits = 64;

    /** Construct an empty (zero-length) vector. */
    BitVec() = default;

    /** Construct @p nbits bits, all initialized to @p value. */
    explicit BitVec(std::size_t nbits, bool value = false);

    /** Number of bits. */
    std::size_t size() const { return nbits; }

    /** True when the vector has zero length. */
    bool empty() const { return nbits == 0; }

    /** Read bit @p idx. */
    bool get(std::size_t idx) const;

    /** Write bit @p idx. */
    void set(std::size_t idx, bool value = true);

    /** Clear bit @p idx. */
    void clear(std::size_t idx) { set(idx, false); }

    /** Set every bit to @p value. */
    void fill(bool value);

    /** Number of backing 64-bit words. */
    std::size_t wordCount() const { return wordStore.size(); }

    /**
     * Backing words: bit i lives at word i/64, bit i%64. Bits of the
     * final word beyond size() are always zero. The store is
     * 32-byte aligned (see util/aligned.hh) for the SIMD kernels;
     * element layout is unchanged.
     */
    const WordVec &words() const { return wordStore; }

    /** Word @p wi of the backing store. */
    std::uint64_t wordAt(std::size_t wi) const
    {
        return wordStore[wi];
    }

    /**
     * Overwrite word @p wi. Bits beyond size() in the final word are
     * silently trimmed back to zero.
     */
    void setWord(std::size_t wi, std::uint64_t w);

    /**
     * Set (value = true) or clear (value = false) exactly the bits of
     * @p mask within word @p wi — the bulk primitive behind the DRAM
     * decay engine's per-row masks. Mask bits beyond size() must be
     * zero.
     */
    void applyMasked(std::size_t wi, std::uint64_t mask, bool value);

    /** Number of set bits. */
    std::size_t popcount() const;

    /** True when no bit is set. */
    bool none() const { return popcount() == 0; }

    /** Indices of all set bits, in increasing order. */
    std::vector<std::size_t> setBits() const;

    /**
     * Count set bits in common with @p other (popcount of AND).
     * Sizes must match.
     */
    std::size_t overlapCount(const BitVec &other) const;

    /**
     * Count bits set here but clear in @p other (popcount of
     * this AND NOT other). This is the inner loop of the paper's
     * Algorithm 3 distance. Sizes must match.
     */
    std::size_t andNotCount(const BitVec &other) const;

    /**
     * andNotCount() with a word-level early exit: returns as soon
     * as the running count exceeds @p limit. The result is exact
     * when it is <= @p limit; otherwise it is a partial count that
     * is > @p limit (a lower bound on the exact count). This is the
     * kernel behind the bounded Algorithm 3 distance used by the
     * batch identification scan. Sizes must match.
     */
    std::size_t andNotCountBounded(const BitVec &other,
                                   std::size_t limit) const;

    /** In-place bitwise AND. Sizes must match. */
    BitVec &operator&=(const BitVec &other);

    /** In-place bitwise OR. Sizes must match. */
    BitVec &operator|=(const BitVec &other);

    /** In-place bitwise XOR. Sizes must match. */
    BitVec &operator^=(const BitVec &other);

    friend BitVec operator&(BitVec a, const BitVec &b) { return a &= b; }
    friend BitVec operator|(BitVec a, const BitVec &b) { return a |= b; }
    friend BitVec operator^(BitVec a, const BitVec &b) { return a ^= b; }

    bool operator==(const BitVec &other) const;
    bool operator!=(const BitVec &other) const { return !(*this == other); }

    /** True when every set bit here is also set in @p other. */
    bool isSubsetOf(const BitVec &other) const;

    /** Copy bits [start, start+len) into a new vector. */
    BitVec slice(std::size_t start, std::size_t len) const;

    /** Overwrite bits [start, start+src.size()) with @p src. */
    void blit(std::size_t start, const BitVec &src);

    /** Hamming distance to @p other (popcount of XOR). */
    std::size_t hammingDistance(const BitVec &other) const;

    /** Render as a '0'/'1' string, bit 0 first (for small vectors). */
    std::string toString() const;

    /** Stable 64-bit content hash (order- and size-sensitive). */
    std::uint64_t hash() const;

  private:
    /** Zero any bits in the final partial word beyond size(). */
    void trimTail();

    std::size_t nbits = 0;
    WordVec wordStore;
};

} // namespace pcause

#endif // PCAUSE_UTIL_BITVEC_HH
