/**
 * @file
 * Physical unit helpers.
 *
 * Time is tracked in seconds (double) and temperature in degrees
 * Celsius; the thin wrappers here exist to make call sites read
 * unambiguously (milliseconds(64) rather than a bare 0.064).
 */

#ifndef PCAUSE_UTIL_UNITS_HH
#define PCAUSE_UTIL_UNITS_HH

namespace pcause
{

/** Seconds, the canonical simulator time unit. */
using Seconds = double;

/** Degrees Celsius, the canonical temperature unit. */
using Celsius = double;

/** Convert milliseconds to Seconds. */
constexpr Seconds milliseconds(double ms) { return ms * 1e-3; }

/** Convert microseconds to Seconds. */
constexpr Seconds microseconds(double us) { return us * 1e-6; }

/** Convert minutes to Seconds. */
constexpr Seconds minutes(double m) { return m * 60.0; }

/** JEDEC refresh period for sub-85C operation (the exact baseline). */
constexpr Seconds jedecRefreshPeriod = milliseconds(64);

/** The JEDEC temperature ceiling the 64 ms period is specified for. */
constexpr Celsius jedecTempCeiling = 85.0;

} // namespace pcause

#endif // PCAUSE_UTIL_UNITS_HH
