/**
 * @file
 * Minimal CSV writer for bench output artifacts.
 *
 * Each bench, in addition to its terminal rendering, can dump the raw
 * rows behind a figure to a CSV file so series can be re-plotted
 * externally.
 */

#ifndef PCAUSE_UTIL_CSV_HH
#define PCAUSE_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace pcause
{

/** Streaming CSV writer with RFC-4180 quoting. */
class CsvWriter
{
  public:
    /** Open @p path for writing and emit the header row. */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    /** Append one row of string cells (quoted as needed). */
    void writeRow(const std::vector<std::string> &cells);

    /** Append one row of numeric cells. */
    void writeRow(const std::vector<double> &cells);

    /** True when the underlying stream is healthy. */
    bool good() const { return out.good(); }

  private:
    std::string quote(const std::string &cell) const;

    std::ofstream out;
    std::size_t arity;
};

} // namespace pcause

#endif // PCAUSE_UTIL_CSV_HH
