#include "core/error_string.hh"

#include "util/logging.hh"

namespace pcause
{

BitVec
errorString(const BitVec &approx, const BitVec &exact)
{
    PC_ASSERT(approx.size() == exact.size(),
              "errorString: size mismatch");
    return approx ^ exact;
}

double
errorRate(const BitVec &approx, const BitVec &exact)
{
    PC_ASSERT(!approx.empty(), "errorRate of empty data");
    return static_cast<double>(approx.hammingDistance(exact)) /
        approx.size();
}

BitVec
maskableCells(const BitVec &exact, const DramConfig &config)
{
    PC_ASSERT(exact.size() == config.totalBits(),
              "maskableCells: size mismatch");
    BitVec out(exact.size());
    for (std::size_t row = 0; row < config.rows; ++row) {
        const bool def = config.defaultBit(row);
        const std::size_t begin = row * config.rowBits();
        for (std::size_t i = 0; i < config.rowBits(); ++i) {
            const std::size_t cell = begin + i;
            if (exact.get(cell) != def)
                out.set(cell);
        }
    }
    return out;
}

} // namespace pcause
