#include "core/error_localization.hh"

#include "core/error_string.hh"
#include "image/filters.hh"
#include "util/logging.hh"

namespace pcause
{

BitVec
localizeByRecompute(const BitVec &approx_output, const Image &input,
                    const std::function<Image(const Image &)> &compute)
{
    const Image exact = compute(input);
    PC_ASSERT(exact.bitSize() == approx_output.size(),
              "localizeByRecompute: output size mismatch");
    return errorString(approx_output, exact.toBits());
}

BitVec
localizeByDenoising(const Image &approx_image, unsigned radius)
{
    const Image estimate = medianFilter(approx_image, radius);
    // Bits that disagree with the denoised estimate are the decay
    // candidates; smooth regions localize exactly, busy regions
    // contribute some false positives (quantified by
    // scoreLocalization in the evaluation).
    return errorString(approx_image.toBits(), estimate.toBits());
}

std::optional<std::pair<std::size_t, IdentifyResult>>
localizeSpeculative(const std::vector<BitVec> &candidates,
                    const FingerprintDb &db,
                    const IdentifyParams &params)
{
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        IdentifyResult res =
            identifyErrorString(candidates[i], db, params);
        if (res.match)
            return std::make_pair(i, res);
    }
    return std::nullopt;
}

LocalizationQuality
scoreLocalization(const BitVec &flagged, const BitVec &truth)
{
    PC_ASSERT(flagged.size() == truth.size(),
              "scoreLocalization: size mismatch");
    const std::size_t hit = flagged.overlapCount(truth);
    const std::size_t n_flagged = flagged.popcount();
    const std::size_t n_actual = truth.popcount();
    LocalizationQuality q;
    q.flagged = n_flagged;
    q.actual = n_actual;
    q.precision = n_flagged ? static_cast<double>(hit) / n_flagged : 1.0;
    q.recall = n_actual ? static_cast<double>(hit) / n_actual : 1.0;
    return q;
}

} // namespace pcause
