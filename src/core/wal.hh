/**
 * @file
 * Write-ahead journal for online fingerprint adds.
 *
 * The PCDB snapshot (core/serialize, v3) is rewritten wholesale; a
 * long-running service that characterizes new chips cannot rewrite a
 * million-record file per add. The WAL closes that gap: every
 * addRecord/addFingerprint appends one checksummed entry and fsyncs
 * *before* the add is acknowledged, so an acked add is on disk even
 * if the process is kill -9'd the next instruction. Recovery loads
 * the snapshot, replays the journal tail, and compacts the result
 * back into a fresh snapshot + empty journal (see
 * AttackService::openDurable).
 *
 * On-disk layout (little-endian throughout):
 *
 *     offset  size  field
 *     0       4     magic "PCWL"
 *     4       4     u32 version = 1
 *     8       8     u64 baseRecords — records in the snapshot this
 *                   journal extends; replay skips entries already
 *                   compacted into a store larger than baseRecords
 *     16      ...   entries
 *
 *   entry:
 *     u32 payload length N (<= maxWalPayload)
 *     u32 CRC-32 of the N payload bytes
 *     payload:
 *       u8  kind = 1 (addRecord)
 *       u32 label length L, u8 label[L]
 *       u32 sources
 *       u64 universe bits U
 *       u64 position count P
 *       u32 positions[P]   strictly ascending, < U
 *
 * Torn-tail discipline: a crash mid-append leaves a strict prefix
 * of a valid entry at EOF (single appender, sequential write).
 * Replay accepts every complete, checksummed entry and *discards*
 * an incomplete tail — that entry was never acked, losing it is
 * correct. A complete entry whose checksum or structure is wrong is
 * not a torn write; it is corruption, and replay refuses with an
 * error instead of guessing.
 *
 * The header is created via temp-file + atomic rename, so a journal
 * either exists with an intact header or not at all — there is no
 * torn-header state to recover from.
 */

#ifndef PCAUSE_CORE_WAL_HH
#define PCAUSE_CORE_WAL_HH

#include <cstdint>
#include <string>

#include "core/serialize.hh"
#include "core/store.hh"

namespace pcause
{

/** Ceiling on one WAL entry's payload bytes; a larger length
 *  prefix is corruption, not a big record. */
constexpr std::uint32_t maxWalPayload = 64u << 20;

/** CRC-32 (IEEE 802.3, the zlib polynomial) of @p len bytes.
 *  @p seed chains partial computations (pass a previous result). */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

/** What a replay did. */
struct WalReplayStats
{
    std::size_t entries = 0; //!< complete, valid entries seen
    std::size_t applied = 0; //!< entries added to the store
    std::size_t skipped = 0; //!< already in the snapshot
    bool tornTail = false;   //!< incomplete tail was discarded
    std::uint64_t goodBytes = 0; //!< file offset after last valid entry
    std::uint64_t baseRecords = 0; //!< header base-record count
};

/** verify() outcome, ordered worst-last. */
enum class WalHealth
{
    Missing,     //!< no journal file (clean state)
    Clean,       //!< header + every entry intact, no tail garbage
    Recoverable, //!< intact prefix, torn tail to discard on replay
    Corrupt,     //!< bad header, checksum, or entry structure
};

/** verify() report. */
struct WalVerifyResult
{
    WalHealth health = WalHealth::Missing;
    std::size_t entries = 0;
    std::uint64_t baseRecords = 0;
    std::uint64_t goodBytes = 0;
    std::string detail; //!< human-readable reason for non-Clean
};

/** An open, appendable journal (see file comment). */
class Wal
{
  public:
    Wal() = default;
    ~Wal();

    Wal(Wal &&other) noexcept;
    Wal &operator=(Wal &&other) noexcept;
    Wal(const Wal &) = delete;
    Wal &operator=(const Wal &) = delete;

    /**
     * Create a fresh journal at @p path extending a
     * @p base_records-record snapshot. Written as temp + fsync +
     * rename + parent-dir fsync, so an existing journal is replaced
     * atomically and a crash never leaves a torn header.
     */
    static LoadResult<Wal> create(const std::string &path,
                                  std::uint64_t base_records);

    /**
     * Reopen an existing journal for appending. @p keep_bytes (a
     * verify()/replay() goodBytes value) truncates a torn tail
     * before the first new append lands behind it.
     */
    static LoadResult<Wal> openExisting(const std::string &path,
                                        std::uint64_t keep_bytes,
                                        std::size_t entry_count);

    /**
     * Append one add and fsync. True only once the entry is
     * durable — the caller acks after, never before. On false the
     * entry must be treated as not written (an error string lands
     * in @p error when non-null).
     */
    bool append(const ChipLabel &label, const Fingerprint &fp,
                std::string *error = nullptr);

    /**
     * Replay the journal at @p path into @p store, which must hold
     * the snapshot this journal extends (store.size() >=
     * baseRecords; entries below that mark were already
     * compacted and are skipped). Torn tails are discarded;
     * corruption fails the load.
     */
    static LoadResult<WalReplayStats> replay(const std::string &path,
                                             FingerprintStore &store);

    /** Structural health check without a store (pcause db verify). */
    static WalVerifyResult verify(const std::string &path);

    /** Entries appended or reopened into this journal. */
    std::size_t entries() const { return entryCount; }

    /** Snapshot record count this journal extends. */
    std::uint64_t baseRecords() const { return base; }

    const std::string &path() const { return filePath; }

    bool isOpen() const { return fd >= 0; }

  private:
    int fd = -1;
    std::string filePath;
    std::uint64_t base = 0;
    std::size_t entryCount = 0;
};

} // namespace pcause

#endif // PCAUSE_CORE_WAL_HH
