#include "core/store.hh"

#include <chrono>

#include "core/error_string.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

namespace
{

/** Seconds elapsed since @p start. */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
}

} // anonymous namespace

FingerprintStore::FingerprintStore(const MinHashParams &index_params)
    : lsh(index_params)
{
}

FingerprintStore
FingerprintStore::fromDb(FingerprintDb db, const MinHashParams &index_params)
{
    FingerprintStore store(index_params);
    for (std::size_t i = 0; i < db.size(); ++i) {
        FingerprintRecord &rec = db.record(i);
        store.add(std::move(rec.label), std::move(rec.fingerprint));
    }
    return store;
}

std::size_t
FingerprintStore::add(ChipLabel label, Fingerprint fp)
{
    MinHashSignature sig =
        minhashSignature(fp.bits(), lsh.params());
    return addWithSignature(std::move(label), std::move(fp),
                            std::move(sig));
}

std::size_t
FingerprintStore::addWithSignature(ChipLabel label, Fingerprint fp,
                                   MinHashSignature sig)
{
    PC_ASSERT(sig.size() == lsh.params().numHashes,
              "FingerprintStore: signature length mismatch");
    const std::size_t i = records.add(std::move(label), std::move(fp));
    lsh.add(i, sig);
    signatures.push_back(std::move(sig));
    return i;
}

const MinHashSignature &
FingerprintStore::signature(std::size_t i) const
{
    PC_ASSERT(i < signatures.size(),
              "FingerprintStore signature index out of range");
    return signatures[i];
}

IdentifyResult
FingerprintStore::queryImpl(const BitVec &error_string,
                            const IdentifyParams &params,
                            AttackStats *stats,
                            bool sharded_fallback) const
{
    if (stats) {
        ++stats->indexQueries;
        stats->recordsAvailable += records.size();
    }

    const MinHashSignature sig =
        minhashSignature(error_string, lsh.params());
    const std::vector<std::size_t> cand = lsh.candidates(sig);
    if (stats)
        stats->candidatesScanned += cand.size();

    if (!cand.empty()) {
        const IdentifyResult res =
            identifyAmong(error_string, records, cand, params, stats);
        if (res.match)
            return res;
    }

    // No shortlist accept: fall back to the exact full scan, whose
    // verdict is returned verbatim — this is what pins the store's
    // accept/reject decisions to the linear Algorithm 2.
    if (stats)
        ++stats->indexFallbacks;
    if (sharded_fallback && workers) {
        return identifyErrorStringParallel(error_string, records,
                                           params, *workers, stats);
    }
    return identifyErrorStringBounded(error_string, records, params,
                                      stats);
}

IdentifyResult
FingerprintStore::query(const BitVec &error_string,
                        const IdentifyParams &params,
                        AttackStats *stats) const
{
    const auto start = std::chrono::steady_clock::now();
    AttackStats local;
    const IdentifyResult res =
        queryImpl(error_string, params, &local, true);
    // Re-time the whole query: the sharded fallback already stamped
    // its own identify time into `local`, which is a subset of ours.
    local.identifySeconds = secondsSince(start);
    if (stats)
        *stats += local;
    return res;
}

IdentifyResult
FingerprintStore::query(const BitVec &approx, const BitVec &exact,
                        const IdentifyParams &params,
                        AttackStats *stats) const
{
    return query(errorString(approx, exact), params, stats);
}

std::vector<IdentifyResult>
FingerprintStore::queryBatch(const std::vector<BitVec> &error_strings,
                             const IdentifyParams &params,
                             AttackStats *stats) const
{
    std::vector<IdentifyResult> results(error_strings.size());
    if (error_strings.empty())
        return results;

    ThreadPool &pool = workers ? *workers : ThreadPool::global();
    const auto start = std::chrono::steady_clock::now();
    AttackStats total;

    if (error_strings.size() < pool.size()) {
        // Few queries: let each query's fallback shard the database
        // scan across the pool instead.
        for (std::size_t q = 0; q < error_strings.size(); ++q) {
            results[q] = queryImpl(error_strings[q], params, &total,
                                   true);
        }
    } else {
        std::vector<AttackStats> locals(pool.size());
        pool.parallelChunks(
            0, error_strings.size(),
            [&](std::size_t b, std::size_t e, std::size_t c) {
                for (std::size_t q = b; q < e; ++q) {
                    results[q] = queryImpl(error_strings[q], params,
                                           &locals[c], false);
                }
            });
        for (const AttackStats &l : locals)
            total += l;
    }

    total.identifySeconds = secondsSince(start);
    if (stats)
        *stats += total;
    return results;
}

IdentifyResult
FingerprintStore::queryLinear(const BitVec &error_string,
                              const IdentifyParams &params,
                              AttackStats *stats) const
{
    const auto start = std::chrono::steady_clock::now();
    AttackStats local;
    const IdentifyResult res = identifyErrorStringBounded(
        error_string, records, params, &local);
    local.recordsAvailable += records.size();
    local.identifySeconds = secondsSince(start);
    if (stats)
        *stats += local;
    return res;
}

void
FingerprintStore::reindex(const MinHashParams &new_params)
{
    LshIndex next(new_params);
    std::vector<MinHashSignature> sigs(records.size());

    const auto hashRecord = [&](std::size_t i) {
        sigs[i] = minhashSignature(records.record(i).fingerprint.bits(),
                                   new_params);
    };
    if (workers) {
        workers->parallelFor(0, records.size(), hashRecord);
    } else {
        for (std::size_t i = 0; i < records.size(); ++i)
            hashRecord(i);
    }
    for (std::size_t i = 0; i < records.size(); ++i)
        next.add(i, sigs[i]);

    lsh = std::move(next);
    signatures = std::move(sigs);
}

} // namespace pcause
