// The store query path is built on the raw scan kernels.
#define PCAUSE_ALLOW_DEPRECATED_IDENTIFY
#include "core/store.hh"

#include <chrono>

#include "core/error_string.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

namespace
{

/** Seconds elapsed since @p start. */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
}

/**
 * Whether a signature computed under @p a is valid content under
 * @p b: signature values depend on the hash count and seed only
 * (banding and probing are how signatures are *used*, not what they
 * contain).
 */
bool
sameSignatureSpace(const MinHashParams &a, const MinHashParams &b)
{
    return a.numHashes == b.numHashes && a.seed == b.seed;
}

} // anonymous namespace

FingerprintStore::FingerprintStore(const MinHashParams &index_params)
    : lsh(index_params)
{
}

FingerprintStore
FingerprintStore::fromDb(FingerprintDb db, const MinHashParams &index_params)
{
    FingerprintStore store(index_params);
    for (std::size_t i = 0; i < db.size(); ++i) {
        FingerprintRecord &rec = db.record(i);
        store.add(std::move(rec.label), std::move(rec.fingerprint));
    }
    return store;
}

std::size_t
FingerprintStore::add(ChipLabel label, Fingerprint fp)
{
    MinHashSignature sig =
        minhashSignature(fp.bits(), lsh.params());
    return addWithSignature(std::move(label), std::move(fp),
                            std::move(sig), lsh.params());
}

std::size_t
FingerprintStore::addWithSignature(ChipLabel label, Fingerprint fp,
                                   MinHashSignature sig,
                                   const MinHashParams &sig_params)
{
    if (!sameSignatureSpace(sig_params, lsh.params())) {
        // A foreign-space signature indexed as-is would silently
        // miss every honest query; recompute instead of trusting.
        sig = minhashSignature(fp.bits(), lsh.params());
    }
    PC_ASSERT(sig.size() == lsh.params().numHashes,
              "FingerprintStore: signature length mismatch");
    sparse.add(fp.bits());
    const std::size_t i = records.add(std::move(label), std::move(fp));
    lsh.add(i, sig);
    signatures.push_back(std::move(sig));
    return i;
}

void
FingerprintStore::addBatch(std::vector<ChipLabel> labels,
                           std::vector<Fingerprint> fps)
{
    PC_ASSERT(labels.size() == fps.size(),
              "addBatch: label/fingerprint count mismatch");
    if (labels.empty())
        return;

    ThreadPool &pool = workers ? *workers : ThreadPool::global();
    const std::size_t first = records.size();
    const MinHashParams &prm = lsh.params();

    // Signatures are pure functions of (fingerprint, params):
    // hashing them across the pool cannot change their values.
    std::vector<MinHashSignature> sigs(fps.size());
    pool.parallelFor(0, fps.size(), [&](std::size_t i) {
        sigs[i] = minhashSignature(fps[i].bits(), prm);
    });

    // Band-sharded bucket fill; ids ascend within every band, the
    // same structure serial add() builds.
    lsh.addAll(first, sigs, &pool);

    for (std::size_t i = 0; i < fps.size(); ++i) {
        sparse.add(fps[i].bits());
        records.add(std::move(labels[i]), std::move(fps[i]));
        signatures.push_back(std::move(sigs[i]));
    }
}

const MinHashSignature &
FingerprintStore::signature(std::size_t i) const
{
    PC_ASSERT(i < signatures.size(),
              "FingerprintStore signature index out of range");
    return signatures[i];
}

IdentifyResult
FingerprintStore::queryImpl(const BitVec &error_string,
                            const IdentifyParams &params,
                            AttackStats *stats,
                            bool sharded_fallback) const
{
    if (stats) {
        ++stats->indexQueries;
        stats->recordsAvailable += records.size();
    }

    const MinHashSketch sketch =
        minhashSketch(error_string, lsh.params());
    const std::vector<std::size_t> cand = lsh.candidates(sketch);
    if (stats)
        stats->candidatesScanned += cand.size();

    // The ModifiedJaccard scans run on the sparse position arena
    // (bit-identical kernel, ~30x less memory traffic); other
    // metrics keep the dense records. Either way the query operand
    // is hashed once here, never per candidate.
    const bool use_sparse =
        params.metric == DistanceMetric::ModifiedJaccard;
    const std::size_t es_weight = error_string.popcount();

    if (!cand.empty()) {
        const IdentifyResult res =
            use_sparse
                ? identifySparseAmong(error_string, es_weight, sparse,
                                      cand, params, stats)
                : identifyAmong(error_string, es_weight, records,
                                cand, params, stats);
        if (res.match)
            return res;
    }

    // No shortlist accept: fall back to the exact full scan, whose
    // verdict is returned verbatim — this is what pins the store's
    // accept/reject decisions to the linear Algorithm 2.
    if (stats)
        ++stats->indexFallbacks;
    if (use_sparse) {
        if (sharded_fallback && workers) {
            return identifySparseParallel(error_string, es_weight,
                                          sparse, params, *workers,
                                          stats);
        }
        return identifySparseBounded(error_string, es_weight, sparse,
                                     params, stats);
    }
    if (sharded_fallback && workers) {
        // identifyErrorStringParallel stamps its own wall time; the
        // public query entries time the whole query exactly once,
        // so strip the inner stamp before merging the counters.
        AttackStats inner;
        const IdentifyResult res = identifyErrorStringParallel(
            error_string, records, params, *workers,
            stats ? &inner : nullptr);
        if (stats) {
            inner.identifySeconds = 0.0;
            *stats += inner;
        }
        return res;
    }
    return identifyErrorStringBounded(error_string, records, params,
                                      stats);
}

IdentifyResult
FingerprintStore::query(const BitVec &error_string,
                        const IdentifyParams &params,
                        AttackStats *stats) const
{
    const auto start = std::chrono::steady_clock::now();
    AttackStats local;
    const IdentifyResult res =
        queryImpl(error_string, params, &local, true);
    // queryImpl never stamps identify time itself, so each query's
    // wall time is counted exactly once, here.
    local.identifySeconds = secondsSince(start);
    if (stats)
        *stats += local;
    return res;
}

IdentifyResult
FingerprintStore::query(const BitVec &approx, const BitVec &exact,
                        const IdentifyParams &params,
                        AttackStats *stats) const
{
    return query(errorString(approx, exact), params, stats);
}

std::vector<IdentifyResult>
FingerprintStore::queryBatch(const std::vector<BitVec> &error_strings,
                             const IdentifyParams &params,
                             AttackStats *stats) const
{
    std::vector<IdentifyResult> results(error_strings.size());
    if (error_strings.empty())
        return results;

    ThreadPool &pool = workers ? *workers : ThreadPool::global();
    const auto start = std::chrono::steady_clock::now();
    AttackStats total;

    if (error_strings.size() < pool.size()) {
        // Few queries: let each query's fallback shard the database
        // scan across the pool instead.
        for (std::size_t q = 0; q < error_strings.size(); ++q) {
            results[q] = queryImpl(error_strings[q], params, &total,
                                   true);
        }
    } else {
        std::vector<AttackStats> locals(pool.size());
        pool.parallelChunks(
            0, error_strings.size(),
            [&](std::size_t b, std::size_t e, std::size_t c) {
                for (std::size_t q = b; q < e; ++q) {
                    results[q] = queryImpl(error_strings[q], params,
                                           &locals[c], false);
                }
            });
        for (const AttackStats &l : locals)
            total += l;
    }

    // One wall-time stamp for the whole batch (queryImpl leaves
    // identifySeconds untouched on every path).
    total.identifySeconds = secondsSince(start);
    if (stats)
        *stats += total;
    return results;
}

IdentifyResult
FingerprintStore::queryLinear(const BitVec &error_string,
                              const IdentifyParams &params,
                              AttackStats *stats) const
{
    const auto start = std::chrono::steady_clock::now();
    AttackStats local;
    const IdentifyResult res = identifyErrorStringBounded(
        error_string, records, params, &local);
    local.recordsAvailable += records.size();
    local.identifySeconds = secondsSince(start);
    if (stats)
        *stats += local;
    return res;
}

void
FingerprintStore::reindex(const MinHashParams &new_params)
{
    LshIndex next(new_params);
    std::vector<MinHashSignature> sigs(records.size());

    ThreadPool *pool = workers;
    const auto hashRecord = [&](std::size_t i) {
        sigs[i] = minhashSignature(records.record(i).fingerprint.bits(),
                                   new_params);
    };
    if (pool) {
        pool->parallelFor(0, records.size(), hashRecord);
    } else {
        for (std::size_t i = 0; i < records.size(); ++i)
            hashRecord(i);
    }
    next.addAll(0, sigs, pool);

    lsh = std::move(next);
    signatures = std::move(sigs);
}

} // namespace pcause
