#include "core/page_fingerprint.hh"

#include "core/distance.hh"
#include "util/rng.hh"

namespace pcause
{

PageFingerprint::PageFingerprint(SparseBitset first_observation)
    : pattern(std::move(first_observation)), numSources(1)
{
}

void
PageFingerprint::augment(const SparseBitset &observation,
                         unsigned max_sources)
{
    if (numSources == 0)
        pattern = observation;
    else if (numSources < max_sources)
        pattern = pattern.intersect(observation);
    ++numSources;
}

double
PageFingerprint::distanceTo(const SparseBitset &observation) const
{
    return modifiedJaccard(observation, pattern);
}

std::vector<std::uint64_t>
PageFingerprint::matchKeys(const SparseBitset &observation)
{
    const auto &pos = observation.positions();
    std::vector<std::uint64_t> keys;
    if (pos.size() < 3)
        return keys;

    // All 3-subsets of the 4 smallest positions (or the single
    // triple when only 3 exist). Positions are sorted, so subsets
    // are emitted in canonical order and hash deterministically.
    const std::size_t n = pos.size() >= 4 ? 4 : 3;
    for (std::size_t skip = 0; skip < n; ++skip) {
        std::uint64_t h = 0x9e3779b97f4a7c15ull;
        for (std::size_t i = 0; i < n; ++i) {
            if (i == skip && n == 4)
                continue;
            h = mix64(h, pos[i]);
        }
        keys.push_back(h);
        if (n == 3)
            break; // only one triple exists
    }
    return keys;
}

std::vector<std::uint64_t>
PageFingerprint::matchKeys() const
{
    return matchKeys(pattern);
}

} // namespace pcause
