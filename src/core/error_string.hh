/**
 * @file
 * Error-bitstring extraction.
 *
 * Every Probable Cause algorithm consumes "error strings": the XOR
 * of an approximate output with its exact counterpart, marking the
 * bit positions that decayed. With real (non-worst-case) data only
 * cells written opposite their row's default value hold charge, so
 * the observable errors are a data-dependent subset of the chip's
 * volatile cells; maskableCells() exposes that mask for analyses
 * that need it.
 */

#ifndef PCAUSE_CORE_ERROR_STRING_HH
#define PCAUSE_CORE_ERROR_STRING_HH

#include "dram/dram_config.hh"
#include "util/bitvec.hh"

namespace pcause
{

/**
 * Error string of an approximate output: bit i is set iff the
 * output differs from the exact value at i (paper Algorithm 1,
 * line 2; Algorithm 2, line 1).
 */
BitVec errorString(const BitVec &approx, const BitVec &exact);

/** Fraction of differing bits between @p approx and @p exact. */
double errorRate(const BitVec &approx, const BitVec &exact);

/**
 * Cells that @p exact charges on a device laid out per @p config:
 * exactly the cells able to decay, hence the positions where errors
 * can possibly appear.
 */
BitVec maskableCells(const BitVec &exact, const DramConfig &config);

} // namespace pcause

#endif // PCAUSE_CORE_ERROR_STRING_HH
