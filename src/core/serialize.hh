/**
 * @file
 * Persistence for the attacker's fingerprint database.
 *
 * Section 4: "Probable Cause stores system-level fingerprints in a
 * database equal to the size of the fingerprinted region of
 * memory... it is possible to reduce the storage requirement by
 * only tracking the fast decaying bits (approximately, 1% of the
 * bits in a memory)." The on-disk format here does exactly that:
 * fingerprints are stored as sparse position lists, so a 32 KB
 * chip's fingerprint costs ~10 KB instead of 32 KB, and scales with
 * the error budget rather than the memory size.
 *
 * Format v3 (little-endian, written by saveStore) is the
 * memory-mappable layout specified byte-for-byte in
 * core/pcdb_format.hh: a fixed 104-byte header with explicit section
 * offsets, a fixed-stride record table, then contiguous signature /
 * position / label arenas and the serialized per-band LSH index.
 * MappedStore (core/mapped_store) queries a v3 file in place without
 * loading it.
 *
 * Format v2 (written by saveDatabase, read transparently):
 *   magic "PCDB", u32 version = 2,
 *   u32 minhash hashes (k), u32 minhash bands, u64 minhash seed,
 *   u64 record count, then per record:
 *     u32 label length, label bytes,
 *     u32 sources, u64 universe bits,
 *     u64 position count, u32 positions[],
 *     u32 signature[k]            (MinHash signature, core/minhash)
 *
 * loadStore()/loadDatabase() accept v1, v2 and v3 with identical
 * resulting stores: v1 files (no minhash header fields, no
 * signatures) get signatures recomputed on load, and v3's extra LSH
 * trailer is validated and then rebuilt from the signatures.
 *
 * Loading is recoverable: malformed input produces a LoadResult
 * carrying an error string instead of killing the process, so a
 * long-running attacker service can survive a damaged database file.
 * Callers that do want to die on bad input (the pcause CLI) handle
 * the error at the call site.
 */

#ifndef PCAUSE_CORE_SERIALIZE_HH
#define PCAUSE_CORE_SERIALIZE_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "core/identify.hh"
#include "core/store.hh"

namespace pcause
{

/**
 * Outcome of a recoverable load: either the value or a
 * human-readable reason it could not be produced.
 */
template <typename T>
struct LoadResult
{
    /** The loaded value; nullopt when loading failed. */
    std::optional<T> value;

    /** Failure reason; empty on success. */
    std::string error;

    /** True when the load succeeded. */
    explicit operator bool() const { return value.has_value(); }

    /** The loaded value (must have succeeded). */
    T &operator*() { return *value; }
    const T &operator*() const { return *value; }
    T *operator->() { return &*value; }
    const T *operator->() const { return &*value; }
};

using DbLoadResult = LoadResult<FingerprintDb>;
using StoreLoadResult = LoadResult<FingerprintStore>;

/** Serialize @p db to a stream (v2, signatures computed under
 *  default MinHashParams). Returns false on IO failure. */
bool saveDatabase(const FingerprintDb &db, std::ostream &out);

/** Serialize @p db to @p path. Returns false on IO failure. */
bool saveDatabase(const FingerprintDb &db, const std::string &path);

/** Serialize @p store (its own index parameters, signatures, and
 *  LSH buckets) as a mmap-able v3 file. Returns false on IO
 *  failure. */
bool saveStore(const FingerprintStore &store, std::ostream &out);

/** Serialize @p store to @p path. Returns false on IO failure. */
bool saveStore(const FingerprintStore &store, const std::string &path);

/**
 * Crash-safe saveStore: the v3 image is written to a temp file in
 * the same directory, fsynced, atomically renamed over @p path, and
 * the parent directory fsynced — a reader (or a recovery after
 * kill -9 at any instruction) sees either the complete old file or
 * the complete new one, never a torn in-place truncation. False on
 * failure with a reason in @p error (when non-null); the target is
 * left untouched on every failure path.
 */
bool saveStoreDurable(const FingerprintStore &store,
                      const std::string &path,
                      std::string *error = nullptr);

/**
 * Load a database from a stream. Malformed, truncated, or
 * version-incompatible input yields a failed result with an error
 * string — never a process exit. Signatures in v2 files are
 * skipped (the plain database carries none).
 */
DbLoadResult loadDatabase(std::istream &in);

/** Load a database from @p path. */
DbLoadResult loadDatabase(const std::string &path);

/**
 * Load an indexed FingerprintStore: v2/v3 files restore the stored
 * index parameters and per-record signatures without rehashing; v1
 * files get signatures recomputed under default MinHashParams.
 */
StoreLoadResult loadStore(std::istream &in);

/** Load a FingerprintStore from @p path. */
StoreLoadResult loadStore(const std::string &path);

/**
 * On-disk size estimate in bytes for a v3 record of @p weight
 * volatile cells, a @p label_len-byte label, and a
 * @p signature_hashes-entry MinHash signature (record-table entry
 * plus its arena shares; the per-band LSH trailer adds ~12 bytes per
 * record on top) — the "1% of bits" storage claim made measurable.
 */
std::size_t recordDiskSize(std::size_t weight, std::size_t label_len,
                           std::size_t signature_hashes =
                               MinHashParams{}.numHashes);

/**
 * Persist a raw bit vector (approximate outputs, exact patterns)
 * as a dense dump: magic "PCBV", u32 version, u64 bit count, bytes.
 * Returns false on IO failure.
 */
bool saveBitVec(const BitVec &bits, const std::string &path);

/** Load a bit vector written by saveBitVec. Fatal on bad input. */
BitVec loadBitVec(const std::string &path);

} // namespace pcause

#endif // PCAUSE_CORE_SERIALIZE_HH
