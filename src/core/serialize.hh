/**
 * @file
 * Persistence for the attacker's fingerprint database.
 *
 * Section 4: "Probable Cause stores system-level fingerprints in a
 * database equal to the size of the fingerprinted region of
 * memory... it is possible to reduce the storage requirement by
 * only tracking the fast decaying bits (approximately, 1% of the
 * bits in a memory)." The on-disk format here does exactly that:
 * fingerprints are stored as sparse position lists, so a 32 KB
 * chip's fingerprint costs ~10 KB instead of 32 KB, and scales with
 * the error budget rather than the memory size.
 *
 * Format (little-endian):
 *   magic "PCDB", u32 version,
 *   u64 record count, then per record:
 *     u32 label length, label bytes,
 *     u32 sources, u64 universe bits,
 *     u64 position count, u32 positions[]
 */

#ifndef PCAUSE_CORE_SERIALIZE_HH
#define PCAUSE_CORE_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "core/identify.hh"

namespace pcause
{

/** Serialize @p db to a stream. Returns false on IO failure. */
bool saveDatabase(const FingerprintDb &db, std::ostream &out);

/** Serialize @p db to @p path. Returns false on IO failure. */
bool saveDatabase(const FingerprintDb &db, const std::string &path);

/**
 * Load a database from a stream. Calls fatal() on malformed or
 * version-incompatible input; IO truncation is also fatal (a
 * damaged attacker database is unusable, not recoverable).
 */
FingerprintDb loadDatabase(std::istream &in);

/** Load a database from @p path. */
FingerprintDb loadDatabase(const std::string &path);

/**
 * On-disk size estimate in bytes for a fingerprint of @p weight
 * volatile cells with a @p label_len-byte label — the "1% of bits"
 * storage claim made measurable.
 */
std::size_t recordDiskSize(std::size_t weight, std::size_t label_len);

/**
 * Persist a raw bit vector (approximate outputs, exact patterns)
 * as a dense dump: magic "PCBV", u32 version, u64 bit count, bytes.
 * Returns false on IO failure.
 */
bool saveBitVec(const BitVec &bits, const std::string &path);

/** Load a bit vector written by saveBitVec. Fatal on bad input. */
BitVec loadBitVec(const std::string &path);

} // namespace pcause

#endif // PCAUSE_CORE_SERIALIZE_HH
