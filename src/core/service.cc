#include "core/service.hh"

#include <atomic>
#include <sstream>

#include <unistd.h>

#include "util/failpoint.hh"
#include "util/logging.hh"

namespace pcause
{

namespace
{

/**
 * Stable small ordinal per thread, assigned on first use: the
 * ServiceStats slot picker. Global across instances — two services
 * sharing a worker thread simply use the same ordinal.
 */
std::size_t
threadOrdinal()
{
    static std::atomic<std::size_t> next{0};
    static thread_local std::size_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // anonymous namespace

ServiceStats::ServiceStats(std::size_t num_slots)
    : slotCount(num_slots == 0 ? 1 : num_slots),
      slots(std::make_unique<Slot[]>(slotCount))
{
}

void
ServiceStats::accumulate(const AttackStats &delta) const
{
    const Slot &slot = slots[threadOrdinal() % slotCount];
    std::lock_guard<std::mutex> lock(slot.m);
    slot.s += delta;
}

AttackStats
ServiceStats::snapshot() const
{
    AttackStats total;
    for (std::size_t i = 0; i < slotCount; ++i) {
        std::lock_guard<std::mutex> lock(slots[i].m);
        total += slots[i].s;
    }
    return total;
}

AttackService::AttackService(FingerprintStore store)
    : owned(std::move(store)),
      gate(std::make_unique<std::shared_mutex>()),
      counters(std::make_unique<ServiceStats>())
{
}

AttackService::AttackService(MappedStore store)
    : mapped(std::move(store)),
      gate(std::make_unique<std::shared_mutex>()),
      counters(std::make_unique<ServiceStats>())
{
}

LoadResult<AttackService>
AttackService::open(const std::string &path, bool mmap)
{
    LoadResult<AttackService> res;
    if (mmap) {
        LoadResult<MappedStore> m = MappedStore::open(path);
        if (!m) {
            res.error = m.error;
            return res;
        }
        res.value.emplace(std::move(*m));
        return res;
    }
    StoreLoadResult s = loadStore(path);
    if (!s) {
        res.error = s.error;
        return res;
    }
    res.value.emplace(std::move(*s));
    return res;
}

LoadResult<AttackService>
AttackService::openDurable(const DurabilityConfig &config)
{
    LoadResult<AttackService> res;
    if (config.dbPath.empty() || config.walPath.empty()) {
        res.error = "openDurable: need both a snapshot path and a "
                    "journal path";
        return res;
    }

    FingerprintStore store;
    const bool have_snapshot =
        ::access(config.dbPath.c_str(), F_OK) == 0;
    if (have_snapshot) {
        StoreLoadResult s = loadStore(config.dbPath);
        if (!s) {
            res.error = s.error;
            return res;
        }
        store = std::move(*s);
    } else if (!config.createIfMissing) {
        res.error = "openDurable: no database at " + config.dbPath;
        return res;
    }

    if (::access(config.walPath.c_str(), F_OK) == 0) {
        LoadResult<WalReplayStats> replayed =
            Wal::replay(config.walPath, store);
        if (!replayed) {
            res.error = replayed.error;
            return res;
        }
        if (replayed->applied > 0 || replayed->tornTail)
            inform("recovery: replayed %zu journaled adds%s",
                   replayed->applied,
                   replayed->tornTail
                       ? " (discarded a torn, unacked tail)"
                       : "");
    }

    AttackService svc(std::move(store));
    svc.dur = config;
    // Compact on open: replayed adds land in the snapshot and the
    // journal restarts empty, so recovery cost stays bounded by one
    // checkpoint interval and the snapshot alone is always a
    // complete acked state once open returns.
    const std::string err = svc.checkpointLocked();
    if (!err.empty()) {
        res.error = err;
        return res;
    }
    res.value.emplace(std::move(svc));
    return res;
}

std::size_t
AttackService::walEntries() const
{
    if (!wal)
        return 0;
    std::shared_lock<std::shared_mutex> lock(*gate);
    return wal->entries();
}

std::string
AttackService::checkpointLocked()
{
    std::string err;
    if (!saveStoreDurable(*owned, dur.dbPath, &err))
        return err;
    LoadResult<Wal> fresh = Wal::create(dur.walPath, owned->size());
    if (!fresh)
        return fresh.error;
    wal = std::make_unique<Wal>(std::move(*fresh));
    return {};
}

std::string
AttackService::checkpoint()
{
    if (!wal)
        return "checkpoint: service is not durable";
    std::unique_lock<std::shared_mutex> lock(*gate);
    return checkpointLocked();
}

std::size_t
AttackService::size() const
{
    return owned ? owned->size() : mapped->size();
}

void
AttackService::setThreadPool(ThreadPool *pool)
{
    if (owned)
        owned->setThreadPool(pool);
    else
        mapped->setThreadPool(pool);
}

IdentifyResult
AttackService::dispatch(const BitVec &error_string,
                        const QueryOptions &options,
                        AttackStats *delta) const
{
    const IdentifyParams p = options.identifyParams();
    if (mapped) {
        PC_ASSERT(options.metric == DistanceMetric::ModifiedJaccard,
                  "AttackService: the mmap backend serves the "
                  "ModifiedJaccard metric only");
        return options.linear
                   ? mapped->queryLinear(error_string, p, delta)
                   : mapped->query(error_string, p, delta);
    }
    return options.linear ? owned->queryLinear(error_string, p, delta)
                          : owned->query(error_string, p, delta);
}

IdentifyVerdict
AttackService::resolve(const IdentifyResult &r, AttackStats delta) const
{
    IdentifyVerdict v;
    v.matched = r.match.has_value();
    v.distance = r.bestDistance;
    v.record = r.match;
    v.nearest = r.nearest;
    if (r.match)
        v.label = label(*r.match);
    if (r.nearest)
        v.nearestLabel = label(*r.nearest);
    v.delta = std::move(delta);
    return v;
}

IdentifyVerdict
AttackService::identify(const IdentifyRequest &req) const
{
    // Queries have no refusal channel, so this hook serves the
    // delay and crash actions (slow-query and kill-mid-query
    // injection); an error arm is a no-op here.
    (void)failpoint::hit("service.query");
    AttackStats delta;
    IdentifyVerdict v;
    {
        std::shared_lock<std::shared_mutex> lock(*gate);
        const IdentifyResult r =
            dispatch(req.errorString, req.options, &delta);
        v = resolve(r, delta);
    }
    counters->accumulate(delta);
    return v;
}

std::vector<IdentifyVerdict>
AttackService::identifyBatch(const std::vector<BitVec> &error_strings,
                             const QueryOptions &options) const
{
    (void)failpoint::hit("service.query");
    std::vector<IdentifyVerdict> verdicts;
    verdicts.reserve(error_strings.size());
    AttackStats delta;
    {
        std::shared_lock<std::shared_mutex> lock(*gate);
        if (owned && !options.linear) {
            // The batched path: queryBatch spreads queries across
            // the pool, elementwise bit-identical to query().
            const std::vector<IdentifyResult> results =
                owned->queryBatch(error_strings,
                                  options.identifyParams(), &delta);
            for (const IdentifyResult &r : results)
                verdicts.push_back(resolve(r, AttackStats{}));
        } else {
            // Mapped or linear backends have no batch entry; the
            // per-query dispatch is already the exact path.
            for (const BitVec &es : error_strings) {
                const IdentifyResult r =
                    dispatch(es, options, &delta);
                verdicts.push_back(resolve(r, AttackStats{}));
            }
        }
    }
    // Per-element deltas are not separable inside a shared batch
    // scan; the batch total reports through snapshot() instead.
    counters->accumulate(delta);
    return verdicts;
}

AttackService::AddOutcome
AttackService::addFingerprint(const ChipLabel &label,
                              const std::vector<BitVec> &error_strings)
{
    AddOutcome out;
    if (error_strings.empty()) {
        out.error = "characterize needs at least one error string";
        return out;
    }
    // Algorithm 1: intersect the error strings.
    Fingerprint fp(error_strings.front());
    for (std::size_t i = 1; i < error_strings.size(); ++i)
        fp.augment(error_strings[i]);
    return addRecord(label, std::move(fp));
}

AttackService::AddOutcome
AttackService::addRecord(ChipLabel label, Fingerprint fp)
{
    AddOutcome out;
    if (readOnly()) {
        out.error = "database is served read-only (mmap backend)";
        return out;
    }
    if (failpoint::hit("service.add")) {
        out.error = "injected add failure";
        return out;
    }
    out.weight = fp.weight();
    bool want_checkpoint = false;
    {
        std::unique_lock<std::shared_mutex> lock(*gate);
        // Journal + fsync *before* the in-memory add: once the
        // caller sees added == true the record is on disk, so an
        // acked add survives kill -9 at any instruction. A failed
        // append refuses the add — never an acked-but-volatile
        // record.
        if (wal != nullptr) {
            std::string err;
            if (!wal->append(label, fp, &err)) {
                out.error = "durability: " + err;
                return out;
            }
            want_checkpoint = dur.checkpointEvery > 0 &&
                              wal->entries() >= dur.checkpointEvery;
        }
        out.record = owned->add(std::move(label), std::move(fp));
    }
    out.added = true;
    if (want_checkpoint) {
        const std::string err = checkpoint();
        // Compaction failure is not data loss — the journal keeps
        // accumulating acked adds — so warn and serve on.
        if (!err.empty())
            warn("checkpoint failed (journal keeps growing): %s",
                 err.c_str());
    }
    return out;
}

ServiceDbStats
AttackService::dbStats() const
{
    ServiceDbStats s;
    std::shared_lock<std::shared_mutex> lock(*gate);
    s.records = size();
    if (owned) {
        s.backend = "store";
        s.indexParams = owned->indexParams();
        const LshIndex::Occupancy occ = owned->index().occupancy();
        s.hasOccupancy = true;
        s.lshBuckets = occ.buckets;
        s.largestBucket = occ.largestBucket;
        for (std::size_t i = 0; i < owned->size(); ++i) {
            const FingerprintRecord &rec = owned->record(i);
            const std::size_t weight = rec.fingerprint.weight();
            s.volatileCells += weight;
            if (rec.fingerprint.bits().size() > s.universeBits)
                s.universeBits = rec.fingerprint.bits().size();
            s.diskBytesEstimate += recordDiskSize(
                weight, rec.label.size(), s.indexParams.numHashes);
        }
        return s;
    }
    s.backend = "mmap";
    s.indexParams = mapped->indexParams();
    for (std::size_t i = 0; i < mapped->size(); ++i) {
        const SparseView v = mapped->view(i);
        s.volatileCells += v.count;
        if (v.universe > s.universeBits)
            s.universeBits = static_cast<std::size_t>(v.universe);
        s.diskBytesEstimate += recordDiskSize(
            v.count, mapped->label(i).size(),
            s.indexParams.numHashes);
    }
    return s;
}

AttackStats
AttackService::snapshot() const
{
    return counters->snapshot();
}

std::string
AttackService::statsJson() const
{
    const AttackStats s = snapshot();
    std::size_t records;
    std::size_t wal_entries = 0;
    {
        std::shared_lock<std::shared_mutex> lock(*gate);
        records = size();
        if (wal)
            wal_entries = wal->entries();
    }
    std::ostringstream json;
    json << "{"
         << "\"backend\": \"" << (readOnly() ? "mmap" : "store")
         << "\", "
         << "\"durable\": " << (durable() ? "true" : "false") << ", "
         << "\"wal_entries\": " << wal_entries << ", "
         << "\"records\": " << records << ", "
         << "\"index_queries\": " << s.indexQueries << ", "
         << "\"index_fallbacks\": " << s.indexFallbacks << ", "
         << "\"candidates_scanned\": " << s.candidatesScanned << ", "
         << "\"records_available\": " << s.recordsAvailable << ", "
         << "\"distances_computed\": " << s.distancesComputed << ", "
         << "\"distances_pruned\": " << s.distancesPruned << ", "
         << "\"pages_probed\": " << s.pagesProbed << ", "
         << "\"characterize_seconds\": " << s.characterizeSeconds
         << ", "
         << "\"identify_seconds\": " << s.identifySeconds << ", "
         << "\"ingest_seconds\": " << s.ingestSeconds << "}";
    return json.str();
}

std::string
AttackService::label(std::size_t i) const
{
    if (owned)
        return owned->record(i).label;
    return std::string(mapped->label(i));
}

} // namespace pcause
