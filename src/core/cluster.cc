#include "core/cluster.hh"

#include "core/error_string.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

OnlineClusterer::OnlineClusterer(const ClusterParams &params)
    : prm(params)
{
}

std::size_t
OnlineClusterer::addErrorString(const BitVec &error_string)
{
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        const double d = distance(prm.metric, error_string,
                                  clusters[i].bits());
        if (d < prm.threshold) {
            // Algorithm 4 line 7: augment the matching cluster's
            // fingerprint by intersection.
            clusters[i].augment(error_string);
            history.push_back(i);
            return i;
        }
    }
    clusters.emplace_back(error_string);
    history.push_back(clusters.size() - 1);
    return clusters.size() - 1;
}

std::size_t
OnlineClusterer::add(const BitVec &approx, const BitVec &exact)
{
    return addErrorString(errorString(approx, exact));
}

const Fingerprint &
OnlineClusterer::fingerprint(std::size_t i) const
{
    PC_ASSERT(i < clusters.size(), "cluster index out of range");
    return clusters[i];
}

FingerprintDb
OnlineClusterer::toDatabase(const std::string &label_prefix) const
{
    FingerprintDb db;
    for (std::size_t i = 0; i < clusters.size(); ++i)
        db.add(label_prefix + std::to_string(i), clusters[i]);
    return db;
}

FingerprintDb
cluster(const std::vector<BitVec> &approx_results, const BitVec &exact,
        const ClusterParams &params,
        std::vector<std::size_t> *assignments_out)
{
    OnlineClusterer clusterer(params);
    for (const auto &approx : approx_results)
        clusterer.add(approx, exact);
    if (assignments_out)
        *assignments_out = clusterer.assignments();
    return clusterer.toDatabase();
}

IndexedClusterer::IndexedClusterer(const ClusterParams &params,
                                   const MinHashParams &index_params)
    : prm(params), lsh(index_params)
{
}

double
IndexedClusterer::confirm(const BitVec &error_string,
                          std::size_t es_weight, std::size_t c) const
{
    // The bounded kernel returns the exact distance whenever it is
    // <= threshold and a pruned value provably > threshold
    // otherwise, so comparing its result against the threshold gives
    // the same accept/reject decision the unbounded metric (and
    // therefore OnlineClusterer) would make.
    if (prm.metric == DistanceMetric::ModifiedJaccard) {
        return modifiedJaccardBounded(error_string, es_weight,
                                      clusters[c].bits(),
                                      prm.threshold);
    }
    return distance(prm.metric, error_string, clusters[c].bits());
}

std::size_t
IndexedClusterer::augmentInto(std::size_t c, const BitVec &error_string)
{
    const std::size_t weight_before = clusters[c].weight();
    clusters[c].augment(error_string);
    ++counters.augments;
    // augment() intersects: bits only ever clear, so an unchanged
    // popcount means an unchanged fingerprint — re-sign exactly when
    // the fingerprint actually shrank. The re-sign is incremental:
    // only permutations whose witness position was cleared get
    // re-hashed, and the index entry moves only when a signature
    // value (hence some band key) actually changed.
    if (clusters[c].weight() != weight_before) {
        const MinHashSignature old = sigs[c];
        if (minhashReSign(clusters[c].bits(), lsh.params(), sigs[c],
                          wits[c])) {
            lsh.update(c, old, sigs[c]);
            ++counters.resigns;
        }
    }
    history.push_back(c);
    return c;
}

std::size_t
IndexedClusterer::ingest(const BitVec &error_string,
                         const MinHashSignature &sig)
{
    ++counters.outputs;
    const std::size_t es_weight = error_string.popcount();

    // Shortlist clusters sharing a primary band bucket, confirmed
    // exactly in ascending id order — creation order, which is the
    // order the pairwise scan visits, so a shortlist accept lands in
    // the same cluster the pairwise scan's first sub-threshold hit
    // would in the separated regime.
    const std::vector<std::size_t> shortlist = lsh.candidates(sig);
    counters.candidatesScanned += shortlist.size();
    for (const std::size_t c : shortlist) {
        if (confirm(error_string, es_weight, c) < prm.threshold)
            return augmentInto(c, error_string);
    }

    // No shortlisted cluster accepted: fall back to the bounded full
    // scan and return its verdict verbatim. Accept/reject is now
    // identical to the pairwise scan unconditionally — the index can
    // only have *missed* a matching cluster, never invented one.
    ++counters.fallbackScans;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
        if (confirm(error_string, es_weight, c) < prm.threshold)
            return augmentInto(c, error_string);
    }

    // Algorithm 4 miss: the error string opens a new cluster, whose
    // fingerprint *is* the error string. The signature is recomputed
    // with witness positions retained (identical values to the query
    // signature) so later shrinks can re-sign incrementally; this
    // runs at cluster-creation rate, not per output.
    clusters.emplace_back(error_string);
    MinHashWitness witness;
    sigs.push_back(minhashSignatureWitness(error_string, lsh.params(),
                                           witness));
    wits.push_back(std::move(witness));
    const std::size_t id = clusters.size() - 1;
    lsh.add(id, sigs.back());
    ++counters.clustersOpened;
    history.push_back(id);
    return id;
}

std::size_t
IndexedClusterer::addErrorString(const BitVec &error_string)
{
    return ingest(error_string,
                  minhashSignature(error_string, lsh.params()));
}

std::size_t
IndexedClusterer::add(const BitVec &approx, const BitVec &exact)
{
    return addErrorString(errorString(approx, exact));
}

std::vector<std::size_t>
IndexedClusterer::addBatch(const std::vector<BitVec> &error_strings)
{
    // Signing is a pure function of (bits, params), so it fans out
    // across the pool; the ingest fold mutates cluster state and
    // stays strictly sequential, making the assignments identical to
    // serial addErrorString() calls in order.
    std::vector<MinHashSignature> sigs_in(error_strings.size());
    ThreadPool &pool = workers ? *workers : ThreadPool::global();
    pool.parallelFor(0, error_strings.size(), [&](std::size_t i) {
        sigs_in[i] = minhashSignature(error_strings[i], lsh.params());
    });
    std::vector<std::size_t> ids;
    ids.reserve(error_strings.size());
    for (std::size_t i = 0; i < error_strings.size(); ++i)
        ids.push_back(ingest(error_strings[i], sigs_in[i]));
    return ids;
}

const Fingerprint &
IndexedClusterer::fingerprint(std::size_t i) const
{
    PC_ASSERT(i < clusters.size(), "cluster index out of range");
    return clusters[i];
}

const MinHashSignature &
IndexedClusterer::signature(std::size_t i) const
{
    PC_ASSERT(i < sigs.size(), "cluster index out of range");
    return sigs[i];
}

FingerprintDb
IndexedClusterer::toDatabase(const std::string &label_prefix) const
{
    FingerprintDb db;
    for (std::size_t i = 0; i < clusters.size(); ++i)
        db.add(label_prefix + std::to_string(i), clusters[i]);
    return db;
}

FingerprintDb
clusterIndexed(const std::vector<BitVec> &approx_results,
               const BitVec &exact, const ClusterParams &params,
               const MinHashParams &index_params,
               std::vector<std::size_t> *assignments_out,
               ThreadPool *pool)
{
    IndexedClusterer clusterer(params, index_params);
    clusterer.setThreadPool(pool);
    std::vector<BitVec> error_strings(approx_results.size());
    ThreadPool &workers = pool ? *pool : ThreadPool::global();
    workers.parallelFor(0, approx_results.size(), [&](std::size_t i) {
        error_strings[i] = errorString(approx_results[i], exact);
    });
    clusterer.addBatch(error_strings);
    if (assignments_out)
        *assignments_out = clusterer.assignments();
    return clusterer.toDatabase();
}

} // namespace pcause
