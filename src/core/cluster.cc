#include "core/cluster.hh"

#include "core/error_string.hh"
#include "util/logging.hh"

namespace pcause
{

OnlineClusterer::OnlineClusterer(const ClusterParams &params)
    : prm(params)
{
}

std::size_t
OnlineClusterer::addErrorString(const BitVec &error_string)
{
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        const double d = distance(prm.metric, error_string,
                                  clusters[i].bits());
        if (d < prm.threshold) {
            // Algorithm 4 line 7: augment the matching cluster's
            // fingerprint by intersection.
            clusters[i].augment(error_string);
            history.push_back(i);
            return i;
        }
    }
    clusters.emplace_back(error_string);
    history.push_back(clusters.size() - 1);
    return clusters.size() - 1;
}

std::size_t
OnlineClusterer::add(const BitVec &approx, const BitVec &exact)
{
    return addErrorString(errorString(approx, exact));
}

const Fingerprint &
OnlineClusterer::fingerprint(std::size_t i) const
{
    PC_ASSERT(i < clusters.size(), "cluster index out of range");
    return clusters[i];
}

FingerprintDb
OnlineClusterer::toDatabase(const std::string &label_prefix) const
{
    FingerprintDb db;
    for (std::size_t i = 0; i < clusters.size(); ++i)
        db.add(label_prefix + std::to_string(i), clusters[i]);
    return db;
}

FingerprintDb
cluster(const std::vector<BitVec> &approx_results, const BitVec &exact,
        const ClusterParams &params,
        std::vector<std::size_t> *assignments_out)
{
    OnlineClusterer clusterer(params);
    for (const auto &approx : approx_results)
        clusterer.add(approx, exact);
    if (assignments_out)
        *assignments_out = clusterer.assignments();
    return clusterer.toDatabase();
}

} // namespace pcause
