/**
 * @file
 * Page-granularity fingerprints.
 *
 * The eavesdropping attacker never sees whole memories — only
 * outputs spanning some pages. PageFingerprint is the 4 KB unit the
 * stitcher works with: a sparse volatile-cell set plus the match
 * keys used to find other observations of the same physical page
 * quickly (an exact-match index over the page's most volatile
 * cells, robust to single-cell flicker).
 */

#ifndef PCAUSE_CORE_PAGE_FINGERPRINT_HH
#define PCAUSE_CORE_PAGE_FINGERPRINT_HH

#include <cstdint>
#include <vector>

#include "util/sparse_bitset.hh"

namespace pcause
{

/** Fingerprint of a single memory page. */
class PageFingerprint
{
  public:
    PageFingerprint() = default;

    /** Seed from a first observed error set. */
    explicit PageFingerprint(SparseBitset first_observation);

    /** The volatile-cell positions. */
    const SparseBitset &bits() const { return pattern; }

    /** Number of observations folded in. */
    unsigned sources() const { return numSources; }

    /** Number of volatile cells recorded. */
    std::size_t weight() const { return pattern.count(); }

    /**
     * Fold another observation in by intersection, as Algorithm 1
     * does at memory scale. Intersection stops after
     * @p max_sources observations so that accumulated flicker
     * cannot erode the fingerprint (the paper builds fingerprints
     * from 3 outputs).
     */
    void augment(const SparseBitset &observation,
                 unsigned max_sources = 5);

    /** Algorithm 3 distance to an observed error set. */
    double distanceTo(const SparseBitset &observation) const;

    /**
     * Exact-match index keys: hashes of every 3-subset of the
     * page's 4 most volatile cells. Two observations of the same
     * page share at least one key unless two of those four cells
     * flickered simultaneously (~0.2% of observations). Pages with
     * fewer than 3 volatile cells produce no keys and are
     * unmatchable — mirroring the paper's note that very lightly
     * approximated data carries little identifying signal.
     */
    std::vector<std::uint64_t> matchKeys() const;

    /** Match keys of a raw observation (same scheme). */
    static std::vector<std::uint64_t>
    matchKeys(const SparseBitset &observation);

  private:
    SparseBitset pattern;
    unsigned numSources = 0;
};

} // namespace pcause

#endif // PCAUSE_CORE_PAGE_FINGERPRINT_HH
