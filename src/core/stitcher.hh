/**
 * @file
 * Fingerprint stitching (paper Section 4, Figures 4 and 13).
 *
 * The stitcher turns a stream of approximate outputs into
 * system-level fingerprints: each output is a run of page-level
 * fingerprints at an unknown physical offset; when two outputs
 * overlap in physical memory, their page fingerprints match and the
 * outputs are merged into one cluster at a consistent relative
 * alignment. As samples accumulate, clusters coalesce until one
 * fingerprint per physical machine remains — the convergence the
 * paper's Figure 13 plots.
 *
 * Matching uses an exact-match key index over each page's most
 * volatile cells (flicker-tolerant) followed by distance
 * verification across the full overlap, so false merges require
 * multiple independent page-level collisions.
 */

#ifndef PCAUSE_CORE_STITCHER_HH
#define PCAUSE_CORE_STITCHER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/page_fingerprint.hh"
#include "util/sparse_bitset.hh"

namespace pcause
{

class ThreadPool;

/** Stitching tunables. */
struct StitchParams
{
    /** Per-page match threshold on the Algorithm 3 distance. */
    double pageThreshold = 0.25;

    /**
     * Fraction of overlapping pages that must match under a
     * proposed alignment for a merge to be accepted.
     */
    double verifyFraction = 0.5;

    /**
     * Minimum matching pages under a proposed alignment. Two is
     * the paper's "range of physical memory pages that held both
     * outputs": a single coinciding page is not a range, and
     * requiring a range is what keeps page-level ASLR (Section
     * 8.2.3) effective against the stitcher.
     */
    std::size_t minVerifyMatches = 2;

    /** Cap on pages checked during alignment verification. */
    std::size_t maxVerifyPages = 16;

    /**
     * Cap on volatile cells stored per page. The paper notes an
     * attacker can track only "the fast decaying bits
     * (approximately 1% of the bits)"; truncating to the most
     * volatile 64 keeps GB-scale experiments in memory without
     * hurting match quality.
     */
    std::size_t maxBitsPerPage = 64;
};

/** Aggregate statistics of a stitching session. */
struct StitchStats
{
    std::uint64_t samplesAdded = 0;
    std::uint64_t pagesProbed = 0;      //!< pages run through the index
    std::uint64_t candidateChecks = 0;  //!< key hits distance-tested
    std::uint64_t pageMatches = 0;      //!< page pairs under threshold
    std::uint64_t merges = 0;           //!< cluster unions performed
    std::uint64_t rejectedMerges = 0;   //!< alignments failing verify
};

/**
 * Builds system-level fingerprints from overlapping outputs.
 *
 * Thread-safety contract: a Stitcher is externally synchronized —
 * concurrent calls on one instance from multiple threads are not
 * supported. Internal parallelism is opt-in via setThreadPool():
 * ingest then fans the read-only page-probing phase (collectVotes)
 * out across the pool while every mutation of the cluster state
 * (fold, merge, index updates) stays on the calling thread.
 */
class Stitcher
{
  public:
    explicit Stitcher(const StitchParams &params = {});
    ~Stitcher();

    Stitcher(const Stitcher &) = delete;
    Stitcher &operator=(const Stitcher &) = delete;

    /**
     * Use @p pool (not owned, may be null to go serial) to
     * parallelize the page-probing phase of ingest and matching.
     */
    void setThreadPool(ThreadPool *pool) { workers = pool; }

    /**
     * Ingest one approximate output: its pages' observed error
     * sets, in buffer order. Returns the cluster id the sample
     * landed in. Cluster ids are stable handles; merged clusters
     * report the surviving cluster's id thereafter.
     */
    std::size_t addSample(const std::vector<SparseBitset> &pages);

    /**
     * Batched ingest: equivalent to calling addSample() on each
     * element in order (samples are folded strictly sequentially,
     * so the cluster evolution is identical), but the per-page
     * truncation of *all* samples runs up front across the thread
     * pool (truncation is pure and idempotent) and each sample's
     * candidate probing fans out as well. Returns the cluster id
     * per sample.
     */
    std::vector<std::size_t>
    addSamples(const std::vector<std::vector<SparseBitset>> &samples);

    /**
     * addSamples() over borrowed page vectors — the zero-copy shape
     * batch callers that already own samples in another layout
     * (EavesdropperAttacker's ApproximateSamples) feed. Null
     * pointers are not allowed.
     */
    std::vector<std::size_t>
    addSamples(
        const std::vector<const std::vector<SparseBitset> *> &samples);

    /**
     * The paper's Figure 13 metric: number of distinct system-level
     * fingerprints ("suspected chips") currently alive.
     */
    std::size_t numSuspectedChips() const;

    /** Total distinct pages recorded across all clusters. */
    std::size_t totalFingerprintedPages() const;

    /** Pages recorded in cluster @p id (0 when merged away). */
    std::size_t clusterSpan(std::size_t id) const;

    /** Number of samples folded into cluster @p id. */
    std::size_t clusterSamples(std::size_t id) const;

    /** Resolve a possibly-merged cluster id to its surviving id. */
    std::size_t resolve(std::size_t id) const;

    /**
     * Identification against the stitched database: match a new
     * output's pages without ingesting them. Returns the cluster id
     * whose fingerprint region matches, or nullopt — the
     * post-deployment analogue of Algorithm 2.
     */
    std::optional<std::size_t>
    matchSample(const std::vector<SparseBitset> &pages) const;

    /** Session statistics. */
    const StitchStats &stats() const { return counters; }

  private:
    struct Cluster;
    struct IndexEntry;

    /** Truncate an observation to the most volatile cells kept.
     *  Deterministic and idempotent: re-truncating a truncated
     *  observation returns it unchanged, which is what lets batch
     *  ingest pre-truncate samples once up front. */
    SparseBitset truncate(const SparseBitset &obs) const;

    /** truncate() applied to every page of a sample. */
    std::vector<SparseBitset>
    truncateAll(const std::vector<SparseBitset> &pages) const;

    /**
     * addSample() past the truncation step: @p pages must already
     * be truncated (every probe/verify/fold below assumes it).
     */
    std::size_t
    addSampleTruncated(const std::vector<SparseBitset> &pages);

    /** Alignment votes one sample produced, keyed by cluster. */
    using VoteMap =
        std::unordered_map<std::size_t,
                           std::map<std::int64_t, std::size_t>>;

    /** Vote for sample alignments against existing clusters.
     *  @p pages must be pre-truncated (see truncateAll). */
    VoteMap collectVotes(const std::vector<SparseBitset> &pages,
                         bool count_stats) const;

    /**
     * Probe pages [begin, end) of a sample against the index,
     * accumulating votes and statistics into caller-owned outputs.
     * Reads cluster state only — safe to run concurrently with
     * other probe shards, but not with any mutation.
     */
    void probePages(const std::vector<SparseBitset> &pages,
                    std::size_t begin, std::size_t end,
                    VoteMap &votes, StitchStats &local) const;

    /** Check a proposed alignment across the sample/cluster overlap. */
    bool verifyAlignment(const std::vector<SparseBitset> &pages,
                         const Cluster &cluster,
                         std::int64_t sample_origin) const;

    /** Fold a sample into a cluster at a verified alignment. */
    void foldSample(std::size_t cluster_id,
                    const std::vector<SparseBitset> &pages,
                    std::int64_t sample_origin);

    /** Merge cluster @p src into @p dst at @p src_origin. */
    void mergeClusters(std::size_t dst, std::size_t src,
                       std::int64_t src_origin);

    /** Add index entries for a cluster page. */
    void indexPage(std::size_t cluster_id, std::int64_t rel_pos,
                   const PageFingerprint &fp);

    /** Frame shift applied when merged cluster @p id forwarded. */
    std::int64_t mergeOffsetOf(std::size_t id) const;

    StitchParams prm;

    /** Session counters. Mutated from const probing paths (they
     *  are measurements, not cluster state), hence mutable; the
     *  mutex serializes merges of per-shard counts when probing
     *  runs on the pool. */
    mutable StitchStats counters;
    mutable std::mutex statsMutex;

    /** Optional pool for the probing phase (not owned). */
    ThreadPool *workers = nullptr;

    std::vector<std::unique_ptr<Cluster>> clusters;
    std::vector<std::size_t> forwarding;  //!< merged-id forwarding
    std::vector<std::int64_t> mergeOffsets; //!< frame shift per merge

    /** match key -> cluster pages bearing that key. */
    std::unordered_map<std::uint64_t, std::vector<IndexEntry>> index;
};

} // namespace pcause

#endif // PCAUSE_CORE_STITCHER_HH
