/**
 * @file
 * End-to-end attacker pipelines for both threat models (Section 3).
 *
 * SupplyChainAttacker models attacker (a): devices are intercepted
 * and fully characterized before deployment, so any later output is
 * attributable by a database lookup. EavesdropperAttacker models
 * attacker (b): only published approximate outputs are available,
 * and system-level fingerprints must be stitched together from
 * overlapping samples.
 */

#ifndef PCAUSE_CORE_ATTACKER_HH
#define PCAUSE_CORE_ATTACKER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/attack_stats.hh"
#include "core/identify.hh"
#include "core/stitcher.hh"
#include "os/commodity_system.hh"
#include "platform/test_harness.hh"

namespace pcause
{

class ThreadPool;

/** Threat model (a): supply-chain interception. */
class SupplyChainAttacker
{
  public:
    explicit SupplyChainAttacker(const IdentifyParams &params = {});

    /**
     * Characterize an intercepted device: run @p num_outputs
     * worst-case trials across the given temperatures (the paper
     * intersects 3 outputs at 1% error and different temperatures)
     * and store the resulting fingerprint.
     *
     * @return index of the new database record
     */
    std::size_t interceptChip(TestHarness &harness,
                              const std::string &label,
                              unsigned num_outputs = 3,
                              double accuracy = 0.99,
                              const std::vector<Celsius> &temps =
                              {40.0, 50.0, 60.0});

    /**
     * Use @p pool (not owned; null reverts to serial) for
     * characterization and batch attribution.
     */
    void setThreadPool(ThreadPool *pool) { workers = pool; }

    /** Attribute a public approximate output to an intercepted chip. */
    IdentifyResult attribute(const BitVec &approx,
                             const BitVec &exact) const;

    /**
     * Attribute many outputs of one exact value in a single batch:
     * the scans run across the thread pool with the bounded
     * distance kernel, and each element is bit-identical to the
     * corresponding attribute() call.
     */
    std::vector<IdentifyResult>
    attributeBatch(const std::vector<BitVec> &approx_outputs,
                   const BitVec &exact) const;

    /**
     * Attribute an output of real (non-worst-case) data: masks the
     * database fingerprints down to the cells the data charged
     * (see identifyWithData()).
     */
    IdentifyResult attributeWithData(const BitVec &approx,
                                     const BitVec &exact,
                                     const DramConfig &config) const;

    /** Label of database record @p index. */
    const std::string &label(std::size_t index) const;

    /** The accumulated fingerprint database. */
    const FingerprintDb &database() const { return db; }

    /** Session counters and per-phase wall time. */
    const AttackStats &stats() const { return counters; }

  private:
    IdentifyParams prm;
    FingerprintDb db;
    std::uint64_t trialCounter = 0;
    ThreadPool *workers = nullptr;

    /** Measurements, not attack state: const paths update them. */
    mutable AttackStats counters;
};

/** Threat model (b): post-deployment eavesdropping. */
class EavesdropperAttacker
{
  public:
    explicit EavesdropperAttacker(const StitchParams &params = {});

    /**
     * Use @p pool (not owned; null reverts to serial) to
     * parallelize the page-probing phase of ingest and matching.
     */
    void setThreadPool(ThreadPool *pool);

    /**
     * Ingest one captured approximate output. Returns the
     * system-level fingerprint (cluster) it was folded into.
     */
    std::size_t observe(const ApproximateSample &sample);

    /**
     * Ingest a batch of captured outputs, equivalent to observing
     * each in order but with page probing parallelized. Returns the
     * cluster id per sample.
     */
    std::vector<std::size_t>
    observeBatch(const std::vector<ApproximateSample> &samples);

    /**
     * Attribute a fresh output to an already-stitched system
     * without ingesting it.
     */
    std::optional<std::size_t>
    attribute(const ApproximateSample &sample) const;

    /** Current number of suspected distinct machines (Figure 13). */
    std::size_t suspectedMachines() const;

    /** Underlying stitcher (for statistics and inspection). */
    const Stitcher &stitcher() const { return stitch; }

    /** Session counters and per-phase wall time. */
    const AttackStats &stats() const { return counters; }

  private:
    Stitcher stitch;
    AttackStats counters;
};

} // namespace pcause

#endif // PCAUSE_CORE_ATTACKER_HH
