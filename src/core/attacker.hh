/**
 * @file
 * End-to-end attacker pipelines for both threat models (Section 3).
 *
 * SupplyChainAttacker models attacker (a): devices are intercepted
 * and fully characterized before deployment, so any later output is
 * attributable by a database lookup. EavesdropperAttacker models
 * attacker (b): only published approximate outputs are available,
 * and system-level fingerprints must be stitched together from
 * overlapping samples.
 */

#ifndef PCAUSE_CORE_ATTACKER_HH
#define PCAUSE_CORE_ATTACKER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/attack_stats.hh"
#include "core/cluster.hh"
#include "core/identify.hh"
#include "core/service.hh"
#include "core/stitcher.hh"
#include "core/store.hh"
#include "os/commodity_system.hh"
#include "platform/test_harness.hh"

namespace pcause
{

class ThreadPool;

/** Threat model (a): supply-chain interception. */
class SupplyChainAttacker
{
  public:
    explicit SupplyChainAttacker(const IdentifyParams &params = {});

    /**
     * Characterize an intercepted device: run @p num_outputs
     * worst-case trials across the given temperatures (the paper
     * intersects 3 outputs at 1% error and different temperatures)
     * and store the resulting fingerprint.
     *
     * @return index of the new database record
     */
    std::size_t interceptChip(TestHarness &harness,
                              const std::string &label,
                              unsigned num_outputs = 3,
                              double accuracy = 0.99,
                              const std::vector<Celsius> &temps =
                              {40.0, 50.0, 60.0});

    /**
     * Use @p pool (not owned; null reverts to serial) for
     * characterization, batch attribution, and the store's query
     * fallback scans.
     */
    void setThreadPool(ThreadPool *pool)
    {
        workers = pool;
        svc.setThreadPool(pool);
    }

    /**
     * Attribute a public approximate output to an intercepted chip.
     * Runs through the store's candidate index: sublinear on a hit,
     * full-scan fallback otherwise, with accept/reject decisions
     * equal to the linear Algorithm 2.
     */
    IdentifyResult attribute(const BitVec &approx,
                             const BitVec &exact) const;

    /**
     * Attribute many outputs of one exact value in a single batch:
     * queries spread across the thread pool, each elementwise equal
     * to the corresponding attribute() call.
     */
    std::vector<IdentifyResult>
    attributeBatch(const std::vector<BitVec> &approx_outputs,
                   const BitVec &exact) const;

    /**
     * Elementwise batch attribution: @p approx_outputs and
     * @p exact_values pair up, mirroring the other batch APIs'
     * unified `const std::vector<...>&` shape.
     */
    std::vector<IdentifyResult>
    attributeBatch(const std::vector<BitVec> &approx_outputs,
                   const std::vector<BitVec> &exact_values) const;

    /**
     * Attribute an output of real (non-worst-case) data: masks the
     * database fingerprints down to the cells the data charged
     * (see identifyWithData()).
     */
    IdentifyResult attributeWithData(const BitVec &approx,
                                     const BitVec &exact,
                                     const DramConfig &config) const;

    /** Label of database record @p index. */
    const std::string &label(std::size_t index) const;

    /** The identification facade every attribution flows through. */
    const AttackService &service() const { return svc; }

    /** The indexed fingerprint store backing this attacker. */
    const FingerprintStore &store() const { return *svc.store(); }

    /** The accumulated fingerprint database (view into store()). */
    const FingerprintDb &database() const { return *svc.db(); }

    /** Session counters and per-phase wall time (characterization
     *  time plus the facade's query counters, merged). */
    const AttackStats &stats() const;

  private:
    IdentifyParams prm;

    /** The AttackService facade over an in-memory store: every
     *  attribute* call is a facade query, so attacker verdicts are
     *  the served ones by construction. */
    AttackService svc;

    std::uint64_t trialCounter = 0;
    ThreadPool *workers = nullptr;

    /** Measurements, not attack state: const paths update them. */
    mutable AttackStats counters;

    /** stats() return slot: counters + svc.snapshot() merged. */
    mutable AttackStats merged;
};

/** Threat model (b): post-deployment eavesdropping. */
class EavesdropperAttacker
{
  public:
    explicit EavesdropperAttacker(const StitchParams &params = {},
                                  const ClusterParams &cluster_params =
                                  {});

    /**
     * Use @p pool (not owned; null reverts to serial) to
     * parallelize the page-probing phase of ingest and matching,
     * batch truncation, and error-string sketching.
     */
    void setThreadPool(ThreadPool *pool);

    /**
     * Ingest one captured approximate output. Returns the
     * system-level fingerprint (cluster) it was folded into.
     */
    std::size_t observe(const ApproximateSample &sample);

    /**
     * Ingest a batch of captured outputs, equivalent to observing
     * each in order but with per-page truncation and page probing
     * parallelized (Stitcher::addSamples). Returns the cluster id
     * per sample.
     */
    std::vector<std::size_t>
    observeBatch(const std::vector<ApproximateSample> &samples);

    /**
     * Ingest one whole-output error string into the Algorithm 4
     * campaign clusterer (the indexed path — sublinear in the
     * number of suspected chips). Returns its cluster index.
     */
    std::size_t observeErrorString(const BitVec &error_string);

    /**
     * Streaming batch of observeErrorString(), with sketches
     * precomputed across the thread pool; assignments equal serial
     * ingestion in order.
     */
    std::vector<std::size_t>
    observeErrorStrings(const std::vector<BitVec> &error_strings);

    /**
     * Attribute a fresh output to an already-stitched system
     * without ingesting it.
     */
    std::optional<std::size_t>
    attribute(const ApproximateSample &sample) const;

    /**
     * Batch attribution, elementwise equal to attribute() on each
     * sample; each sample's page probing runs across the thread
     * pool, and identify wall time reports through stats().
     */
    std::vector<std::optional<std::size_t>>
    attributeBatch(const std::vector<ApproximateSample> &samples) const;

    /** Current number of suspected distinct machines (Figure 13). */
    std::size_t suspectedMachines() const;

    /** Underlying stitcher (for statistics and inspection). */
    const Stitcher &stitcher() const { return stitch; }

    /** The campaign clusterer behind observeErrorString*(). */
    const IndexedClusterer &clusterer() const { return whole; }

    /** Discovered per-chip fingerprints of the error-string
     *  campaign, as an identification database. */
    FingerprintDb clusterDatabase() const { return whole.toDatabase(); }

    /** Session counters and per-phase wall time. */
    const AttackStats &stats() const { return counters; }

  private:
    Stitcher stitch;

    /** Whole-output campaign clustering (paper Algorithm 4). */
    IndexedClusterer whole;

    /** Measurements, not attack state: const paths update them. */
    mutable AttackStats counters;
};

} // namespace pcause

#endif // PCAUSE_CORE_ATTACKER_HH
