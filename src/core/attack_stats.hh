/**
 * @file
 * Counters instrumenting the attacker hot paths.
 *
 * Every batch API threads one of these through: the database scan
 * counts full and pruned distance evaluations, the stitcher ingest
 * counts page probes, and the attacker facades accumulate wall time
 * per pipeline phase. Counters are plain integers — parallel code
 * accumulates into per-thread locals and merges with operator+=
 * after the join, so the hot loops carry no atomics.
 */

#ifndef PCAUSE_CORE_ATTACK_STATS_HH
#define PCAUSE_CORE_ATTACK_STATS_HH

#include <cstdint>

namespace pcause
{

/** Aggregate counters for one attacker session or batch call. */
struct AttackStats
{
    /** Distance evaluations that ran to completion. */
    std::uint64_t distancesComputed = 0;

    /** Distance evaluations cut short by the bounded kernel. */
    std::uint64_t distancesPruned = 0;

    /** Pages probed against the stitcher's match-key index. */
    std::uint64_t pagesProbed = 0;

    /** Queries answered through the MinHash/LSH candidate index. */
    std::uint64_t indexQueries = 0;

    /** Indexed queries whose shortlist yielded no accept and fell
     *  back to the full linear scan. */
    std::uint64_t indexFallbacks = 0;

    /** Shortlist records handed to the exact distance kernel. */
    std::uint64_t candidatesScanned = 0;

    /** Database records that were available per query, summed — the
     *  denominator candidatesScanned is measured against. */
    std::uint64_t recordsAvailable = 0;

    /** Wall time spent fingerprinting (Algorithm 1). */
    double characterizeSeconds = 0.0;

    /** Wall time spent in database identification (Algorithm 2). */
    double identifySeconds = 0.0;

    /** Wall time spent ingesting samples into the stitcher. */
    double ingestSeconds = 0.0;

    AttackStats &operator+=(const AttackStats &o)
    {
        distancesComputed += o.distancesComputed;
        distancesPruned += o.distancesPruned;
        pagesProbed += o.pagesProbed;
        indexQueries += o.indexQueries;
        indexFallbacks += o.indexFallbacks;
        candidatesScanned += o.candidatesScanned;
        recordsAvailable += o.recordsAvailable;
        characterizeSeconds += o.characterizeSeconds;
        identifySeconds += o.identifySeconds;
        ingestSeconds += o.ingestSeconds;
        return *this;
    }
};

} // namespace pcause

#endif // PCAUSE_CORE_ATTACK_STATS_HH
