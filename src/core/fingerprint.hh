/**
 * @file
 * Memory fingerprints.
 *
 * A fingerprint is the set of a chip's most volatile cells, learned
 * as the intersection of error strings from several approximate
 * outputs (paper Algorithm 1). Intersection suppresses trial noise,
 * keeps the fingerprint small enough to match lightly approximated
 * outputs, and is cheap to update online — the properties Section
 * 5.1 calls out.
 */

#ifndef PCAUSE_CORE_FINGERPRINT_HH
#define PCAUSE_CORE_FINGERPRINT_HH

#include <cstdint>

#include "util/bitvec.hh"

namespace pcause
{

/** A whole-memory fingerprint plus its provenance. */
class Fingerprint
{
  public:
    /** Empty fingerprint (matches nothing). */
    Fingerprint() = default;

    /** Seed a fingerprint from a first error string. */
    explicit Fingerprint(BitVec first_error_string);

    /**
     * Adopt an already-intersected pattern together with the number
     * of error strings it came from. Used by the parallel
     * characterize(), which reduces the intersection tree-wise and
     * only materializes the final pattern.
     */
    Fingerprint(BitVec intersected_pattern, unsigned num_sources);

    /** The volatile-cell positions (set bits). */
    const BitVec &bits() const { return pattern; }

    /** Number of error strings folded in. */
    unsigned sources() const { return numSources; }

    /** Number of volatile cells in the fingerprint. */
    std::size_t weight() const { return pattern.popcount(); }

    /** True before any error string has been folded in. */
    bool empty() const { return numSources == 0; }

    /**
     * Fold another error string in by intersection (Algorithm 1,
     * line 3; Algorithm 4, line 7). Only cells that failed in every
     * observation survive, "keeping only the most volatile bits."
     */
    void augment(const BitVec &error_string);

  private:
    BitVec pattern;
    unsigned numSources = 0;
};

} // namespace pcause

#endif // PCAUSE_CORE_FINGERPRINT_HH
