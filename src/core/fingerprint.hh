/**
 * @file
 * Memory fingerprints.
 *
 * A fingerprint is the set of a chip's most volatile cells, learned
 * as the intersection of error strings from several approximate
 * outputs (paper Algorithm 1). Intersection suppresses trial noise,
 * keeps the fingerprint small enough to match lightly approximated
 * outputs, and is cheap to update online — the properties Section
 * 5.1 calls out.
 */

#ifndef PCAUSE_CORE_FINGERPRINT_HH
#define PCAUSE_CORE_FINGERPRINT_HH

#include <cstdint>
#include <vector>

#include "util/aligned.hh"
#include "util/bitvec.hh"
#include "util/sparse_bitset.hh"

namespace pcause
{

/** A whole-memory fingerprint plus its provenance. */
class Fingerprint
{
  public:
    /** Empty fingerprint (matches nothing). */
    Fingerprint() = default;

    /** Seed a fingerprint from a first error string. */
    explicit Fingerprint(BitVec first_error_string);

    /**
     * Adopt an already-intersected pattern together with the number
     * of error strings it came from. Used by the parallel
     * characterize(), which reduces the intersection tree-wise and
     * only materializes the final pattern.
     */
    Fingerprint(BitVec intersected_pattern, unsigned num_sources);

    /** The volatile-cell positions (set bits). */
    const BitVec &bits() const { return pattern; }

    /** Number of error strings folded in. */
    unsigned sources() const { return numSources; }

    /** Number of volatile cells in the fingerprint. */
    std::size_t weight() const { return pattern.popcount(); }

    /** True before any error string has been folded in. */
    bool empty() const { return numSources == 0; }

    /**
     * Fold another error string in by intersection (Algorithm 1,
     * line 3; Algorithm 4, line 7). Only cells that failed in every
     * observation survive, "keeping only the most volatile bits."
     */
    void augment(const BitVec &error_string);

  private:
    BitVec pattern;
    unsigned numSources = 0;
};

/**
 * Read-only view of a collection of sparse fingerprints, indexed by
 * record id. Abstracts over where the position lists live — the
 * FingerprintStore's in-memory arena or an mmap-ed v3 database file
 * — so the sparse identification scans in core/identify run
 * unchanged against both.
 */
class SparseFingerprintSource
{
  public:
    virtual ~SparseFingerprintSource() = default;

    /** Number of fingerprints. */
    virtual std::size_t count() const = 0;

    /** Sorted position list of fingerprint @p i. */
    virtual SparseView view(std::size_t i) const = 0;
};

/**
 * Contiguous sparse-fingerprint storage: all position lists live in
 * one arena with per-record offsets, so a million fingerprints cost
 * two flat allocations (~4 bytes per volatile cell) instead of a
 * dense BitVec apiece — the in-memory mirror of the v3 on-disk
 * position arena.
 */
class SparseFingerprintArena : public SparseFingerprintSource
{
  public:
    std::size_t count() const override { return universes.size(); }

    SparseView view(std::size_t i) const override;

    /** Append @p pattern's set bits as the next record. */
    void add(const BitVec &pattern);

    /**
     * Append an already-sorted position list (ascending, unique,
     * each < @p universe_bits) as the next record.
     */
    void addPositions(const std::uint32_t *positions,
                      std::size_t position_count,
                      std::uint64_t universe_bits);

    /** Total positions stored across all records. */
    std::size_t totalPositions() const { return arena.size(); }

    /** Flat position arena (record @p i occupies
     *  [offsets[i], offsets[i+1])) — written verbatim to v3 files.
     *  32-byte aligned for the SIMD scan kernels; element layout is
     *  the v3 on-disk layout. */
    const PosVec &positions() const { return arena; }

    /** Drop all records. */
    void clear();

  private:
    PosVec arena;
    std::vector<std::uint64_t> offsets{0};
    std::vector<std::uint64_t> universes;
};

} // namespace pcause

#endif // PCAUSE_CORE_FINGERPRINT_HH
