/**
 * @file
 * FingerprintStore: the attacker database behind one API.
 *
 * Wraps the plain FingerprintDb with a MinHash/LSH candidate index
 * (core/minhash) so identification is sublinear in the number of
 * known chips: a query hashes its error string to a signature,
 * pulls the records colliding in at least one LSH band, and runs
 * the exact bounded Algorithm 3 kernel on that shortlist only.
 *
 * Accept/reject equivalence with the paper's linear Algorithm 2 is
 * guaranteed by construction: a shortlist accept implies a record
 * under threshold exists (the exact kernel verified it), and a
 * shortlist miss falls back to the full scan, whose result is
 * returned verbatim. The only permitted divergence is *which*
 * record is reported when several sit under the threshold in
 * first-match mode — the shortlist may surface a later record than
 * the linear scan's first hit (distinct chips are never that close;
 * see docs/ALGORITHMS.md "Fingerprint index").
 */

#ifndef PCAUSE_CORE_STORE_HH
#define PCAUSE_CORE_STORE_HH

#include <cstdint>
#include <vector>

#include "core/identify.hh"
#include "core/minhash.hh"

namespace pcause
{

class ThreadPool;

/** Indexed attacker database: FingerprintDb + LSH candidate index. */
class FingerprintStore
{
  public:
    explicit FingerprintStore(const MinHashParams &index_params = {});

    /** Build a store over an existing database (index computed). */
    static FingerprintStore fromDb(FingerprintDb db,
                                   const MinHashParams &index_params = {});

    /**
     * Add a record: the signature is computed and indexed
     * incrementally, no rebuild. Returns the record index.
     */
    std::size_t add(ChipLabel label, Fingerprint fp);

    /**
     * Add a record whose signature is already known (the on-disk
     * formats carry signatures). @p sig_params must state the
     * parameters the signature was computed under: when its
     * signature space matches this store's (same hash count and
     * seed — banding does not affect signature content), the
     * signature is adopted verbatim; otherwise it is recomputed
     * under the store's parameters, so a caller can never silently
     * mix signature spaces (e.g. by adding a default-params
     * signature to a store loaded from a custom-params file).
     */
    std::size_t addWithSignature(ChipLabel label, Fingerprint fp,
                                 MinHashSignature sig,
                                 const MinHashParams &sig_params);

    /**
     * Bulk add with a parallel index build: signatures are computed
     * across the thread pool (setThreadPool(), else the process
     * global) and the LSH bucket maps are filled band-sharded. The
     * resulting store is bit-identical to serial add() calls in
     * order — signatures are order-independent and each band's
     * buckets see records in ascending id order either way.
     * @p labels and @p fps pair up elementwise and are consumed.
     */
    void addBatch(std::vector<ChipLabel> labels,
                  std::vector<Fingerprint> fps);

    /** Number of records. */
    std::size_t size() const { return records.size(); }

    /** True when no record has been added. */
    bool empty() const { return records.size() == 0; }

    /** Record @p i. */
    const FingerprintRecord &record(std::size_t i) const
    {
        return records.record(i);
    }

    /** The wrapped database (for the unindexed legacy APIs). */
    const FingerprintDb &db() const { return records; }

    /** MinHash signature of record @p i. */
    const MinHashSignature &signature(std::size_t i) const;

    /** Signature/banding parameters of the current index. */
    const MinHashParams &indexParams() const { return lsh.params(); }

    /** The candidate index (diagnostics: occupancy, size). */
    const LshIndex &index() const { return lsh; }

    /**
     * Sparse position-arena mirror of the fingerprints, maintained
     * alongside the dense records: the representation the
     * ModifiedJaccard query paths scan and the v3 writer persists.
     */
    const SparseFingerprintArena &sparseFingerprints() const
    {
        return sparse;
    }

    /**
     * Use @p pool (not owned; null reverts to serial single-query
     * fallbacks and the process-global pool for batches) for query
     * fallback scans, batch queries, and reindexing.
     */
    void setThreadPool(ThreadPool *pool) { workers = pool; }

    /**
     * Indexed Algorithm 2 from a precomputed error string: exact
     * bounded-distance scan of the LSH shortlist, full fallback
     * scan when the shortlist yields no accept. @p stats, when
     * non-null, accumulates candidates-scanned vs database-size
     * counters, kernel counters, and identify wall time.
     */
    IdentifyResult query(const BitVec &error_string,
                         const IdentifyParams &params = {},
                         AttackStats *stats = nullptr) const;

    /** Indexed Algorithm 2 from an output and its exact value. */
    IdentifyResult query(const BitVec &approx, const BitVec &exact,
                         const IdentifyParams &params = {},
                         AttackStats *stats = nullptr) const;

    /**
     * Batch query: elementwise equal to query() on each error
     * string, spread across the thread pool (the process-global
     * pool when none is set).
     */
    std::vector<IdentifyResult>
    queryBatch(const std::vector<BitVec> &error_strings,
               const IdentifyParams &params = {},
               AttackStats *stats = nullptr) const;

    /**
     * Reference linear Algorithm 2 (serial bounded full scan,
     * bit-identical verdicts to identifyErrorString()) — the
     * baseline the index is measured against.
     */
    IdentifyResult queryLinear(const BitVec &error_string,
                               const IdentifyParams &params = {},
                               AttackStats *stats = nullptr) const;

    /**
     * Rebuild the index under new signature/banding parameters;
     * signatures are recomputed (across the pool when one is set).
     */
    void reindex(const MinHashParams &new_params);

  private:
    /**
     * query() body accumulating into @p stats without timing; the
     * public entry points add wall time around it. @p sharded_fallback
     * selects the pool-sharded fallback scan (single-query path)
     * over the serial bounded one (batch path, where queries
     * already occupy the pool).
     */
    IdentifyResult queryImpl(const BitVec &error_string,
                             const IdentifyParams &params,
                             AttackStats *stats,
                             bool sharded_fallback) const;

    FingerprintDb records;
    std::vector<MinHashSignature> signatures;
    SparseFingerprintArena sparse;
    LshIndex lsh;
    ThreadPool *workers = nullptr;
};

} // namespace pcause

#endif // PCAUSE_CORE_STORE_HH
