#include "core/wal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/failpoint.hh"

namespace pcause
{

namespace
{

constexpr char walMagic[4] = {'P', 'C', 'W', 'L'};
constexpr std::uint32_t walVersion = 1;
constexpr std::size_t walHeaderBytes = 16;
constexpr std::uint8_t entryKindAddRecord = 1;

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** write() the whole buffer, riding out EINTR and short writes. */
bool
writeFully(int fd, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::size_t done = 0;
    while (done < len) {
        const ssize_t w = ::write(fd, p + done, len - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(w);
    }
    return true;
}

/** fsync the directory containing @p path so a rename into it is
 *  itself durable. Best effort: some filesystems refuse. */
void
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0)
        return;
    (void)::fsync(dfd);
    ::close(dfd);
}

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** One decoded journal entry. */
struct WalEntry
{
    ChipLabel label;
    std::uint32_t sources = 0;
    std::uint64_t universe = 0;
    std::vector<std::uint32_t> positions;
};

/** Serialize one add into entry framing (length + crc + payload). */
std::vector<std::uint8_t>
encodeEntry(const ChipLabel &label, const Fingerprint &fp)
{
    std::vector<std::uint8_t> payload;
    payload.push_back(entryKindAddRecord);
    putU32(payload, static_cast<std::uint32_t>(label.size()));
    payload.insert(payload.end(), label.begin(), label.end());
    putU32(payload, fp.sources());
    const BitVec &bits = fp.bits();
    putU64(payload, bits.size());
    putU64(payload, fp.weight());
    for (std::size_t i = 0; i < bits.size(); ++i)
        if (bits.get(i))
            putU32(payload, static_cast<std::uint32_t>(i));

    std::vector<std::uint8_t> framed;
    framed.reserve(8 + payload.size());
    putU32(framed, static_cast<std::uint32_t>(payload.size()));
    putU32(framed, crc32(payload.data(), payload.size()));
    framed.insert(framed.end(), payload.begin(), payload.end());
    return framed;
}

/** Bounds-checked payload decode; empty string on success. */
std::string
decodeEntry(const std::uint8_t *p, std::size_t n, WalEntry &entry)
{
    std::size_t off = 0;
    if (n < 1)
        return "payload too short for kind";
    const std::uint8_t kind = p[off++];
    if (kind != entryKindAddRecord)
        return "unknown entry kind " + std::to_string(kind);
    if (n - off < 4)
        return "truncated label length";
    const std::uint32_t label_len = getU32(p + off);
    off += 4;
    if (n - off < label_len)
        return "truncated label";
    entry.label.assign(reinterpret_cast<const char *>(p + off),
                       label_len);
    off += label_len;
    if (n - off < 4 + 8 + 8)
        return "truncated fingerprint header";
    entry.sources = getU32(p + off);
    off += 4;
    entry.universe = getU64(p + off);
    off += 8;
    const std::uint64_t count = getU64(p + off);
    off += 8;
    if ((n - off) / 4 < count)
        return "truncated position list";
    entry.positions.resize(static_cast<std::size_t>(count));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint32_t pos = getU32(p + off);
        off += 4;
        if (pos >= entry.universe)
            return "position beyond the universe";
        if (i > 0 && pos <= prev)
            return "positions not strictly ascending";
        entry.positions[static_cast<std::size_t>(i)] = pos;
        prev = pos;
    }
    if (off != n)
        return "trailing bytes after position list";
    return {};
}

/**
 * Shared scan behind replay() and verify(): walks the file,
 * validates the header and every complete entry, and hands each
 * decoded entry to @p sink (which may be null for verify). Fills
 * @p stats; returns an error string on corruption.
 */
std::string
scanWal(const std::string &path, WalReplayStats &stats,
        const std::function<void(WalEntry &&)> *sink)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return errnoString("open");
    std::vector<std::uint8_t> bytes;
    {
        std::uint8_t chunk[1 << 16];
        std::size_t got;
        while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
            bytes.insert(bytes.end(), chunk, chunk + got);
        const bool bad = std::ferror(f) != 0;
        std::fclose(f);
        if (bad)
            return "read failed";
    }

    if (bytes.size() < walHeaderBytes)
        return "truncated header (" + std::to_string(bytes.size()) +
               " bytes)";
    if (std::memcmp(bytes.data(), walMagic, sizeof(walMagic)) != 0)
        return "bad magic";
    const std::uint32_t version = getU32(bytes.data() + 4);
    if (version != walVersion)
        return "unsupported version " + std::to_string(version);
    stats.baseRecords = getU64(bytes.data() + 8);
    stats.goodBytes = walHeaderBytes;

    std::size_t off = walHeaderBytes;
    while (off < bytes.size()) {
        if (bytes.size() - off < 8) {
            stats.tornTail = true; // torn entry header
            break;
        }
        const std::uint32_t len = getU32(bytes.data() + off);
        const std::uint32_t want_crc = getU32(bytes.data() + off + 4);
        if (len == 0 || len > maxWalPayload)
            return "entry " + std::to_string(stats.entries) +
                   ": implausible length " + std::to_string(len);
        if (bytes.size() - off - 8 < len) {
            stats.tornTail = true; // torn payload
            break;
        }
        const std::uint8_t *payload = bytes.data() + off + 8;
        if (crc32(payload, len) != want_crc)
            return "entry " + std::to_string(stats.entries) +
                   ": checksum mismatch";
        WalEntry entry;
        const std::string err = decodeEntry(payload, len, entry);
        if (!err.empty())
            return "entry " + std::to_string(stats.entries) + ": " +
                   err;
        ++stats.entries;
        off += 8 + len;
        stats.goodBytes = off;
        if (sink != nullptr)
            (*sink)(std::move(entry));
    }
    return {};
}

} // anonymous namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    // Standard reflected CRC-32 (poly 0xEDB88320), table built on
    // first use. Throughput is irrelevant here — entries are small
    // and the fsync dominates by orders of magnitude.
    static const std::uint32_t *table = [] {
        static std::uint32_t t[256];
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

Wal::~Wal()
{
    if (fd >= 0)
        ::close(fd);
}

Wal::Wal(Wal &&other) noexcept
    : fd(other.fd), filePath(std::move(other.filePath)),
      base(other.base), entryCount(other.entryCount)
{
    other.fd = -1;
}

Wal &
Wal::operator=(Wal &&other) noexcept
{
    if (this != &other) {
        if (fd >= 0)
            ::close(fd);
        fd = other.fd;
        filePath = std::move(other.filePath);
        base = other.base;
        entryCount = other.entryCount;
        other.fd = -1;
    }
    return *this;
}

LoadResult<Wal>
Wal::create(const std::string &path, std::uint64_t base_records)
{
    LoadResult<Wal> res;
    std::vector<std::uint8_t> header;
    header.insert(header.end(), walMagic, walMagic + 4);
    putU32(header, walVersion);
    putU64(header, base_records);

    // Temp + rename: the journal either appears with an intact
    // header or not at all; an existing journal is replaced
    // atomically (the checkpoint compaction path).
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) {
        res.error = "wal create: " + errnoString("open temp");
        return res;
    }
    if (!writeFully(tfd, header.data(), header.size()) ||
        ::fsync(tfd) != 0) {
        res.error = "wal create: " + errnoString("write header");
        ::close(tfd);
        ::unlink(tmp.c_str());
        return res;
    }
    ::close(tfd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        res.error = "wal create: " + errnoString("rename");
        ::unlink(tmp.c_str());
        return res;
    }
    fsyncParentDir(path);

    const int afd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (afd < 0) {
        res.error = "wal create: " + errnoString("reopen for append");
        return res;
    }
    Wal wal;
    wal.fd = afd;
    wal.filePath = path;
    wal.base = base_records;
    wal.entryCount = 0;
    res.value.emplace(std::move(wal));
    return res;
}

LoadResult<Wal>
Wal::openExisting(const std::string &path, std::uint64_t keep_bytes,
                  std::size_t entry_count)
{
    LoadResult<Wal> res;
    const int afd = ::open(path.c_str(), O_WRONLY);
    if (afd < 0) {
        res.error = "wal open: " + errnoString("open");
        return res;
    }
    // Drop a torn tail before new appends land behind it — a new
    // entry after garbage would be unreachable at replay.
    if (::ftruncate(afd, static_cast<off_t>(keep_bytes)) != 0 ||
        ::lseek(afd, 0, SEEK_END) < 0 || ::fsync(afd) != 0) {
        res.error = "wal open: " + errnoString("truncate tail");
        ::close(afd);
        return res;
    }
    std::uint8_t header[walHeaderBytes];
    {
        const int rfd = ::open(path.c_str(), O_RDONLY);
        if (rfd < 0 ||
            ::read(rfd, header, sizeof(header)) !=
                static_cast<ssize_t>(sizeof(header))) {
            res.error = "wal open: cannot read header";
            if (rfd >= 0)
                ::close(rfd);
            ::close(afd);
            return res;
        }
        ::close(rfd);
    }
    Wal wal;
    wal.fd = afd;
    wal.filePath = path;
    wal.base = getU64(header + 8);
    wal.entryCount = entry_count;
    res.value.emplace(std::move(wal));
    return res;
}

bool
Wal::append(const ChipLabel &label, const Fingerprint &fp,
            std::string *error)
{
    if (fd < 0) {
        if (error)
            *error = "wal append: journal is not open";
        return false;
    }
    const std::vector<std::uint8_t> framed = encodeEntry(label, fp);

    if (failpoint::hit("wal.append")) {
        if (error)
            *error = "wal append: injected write failure";
        return false;
    }
    // Torn-write injection: put a strict prefix of the entry on
    // disk, then fire the configured action — crash leaves the torn
    // tail for recovery to discard, error reports an unacked,
    // half-written entry (same recovery obligation).
    const failpoint::Action torn =
        failpoint::consume("wal.append.torn");
    if (torn != failpoint::Action::Off) {
        (void)writeFully(fd, framed.data(), framed.size() / 2);
        if (torn == failpoint::Action::Crash)
            failpoint::crashNow();
        if (error)
            *error = "wal append: injected torn write";
        return false;
    }

    if (!writeFully(fd, framed.data(), framed.size())) {
        if (error)
            *error = "wal append: " + errnoString("write");
        return false;
    }
    if (failpoint::hit("wal.fsync")) {
        if (error)
            *error = "wal append: injected fsync failure";
        return false;
    }
    if (::fsync(fd) != 0) {
        if (error)
            *error = "wal append: " + errnoString("fsync");
        return false;
    }
    ++entryCount;
    return true;
}

LoadResult<WalReplayStats>
Wal::replay(const std::string &path, FingerprintStore &store)
{
    LoadResult<WalReplayStats> res;
    if (failpoint::hit("wal.replay")) {
        res.error = "wal replay: injected failure";
        return res;
    }
    WalReplayStats stats;

    // Entries before (store.size() - baseRecords) are already in
    // the snapshot — the crash-between-compaction-and-journal-reset
    // window replays them as skips, not duplicates.
    std::vector<WalEntry> pending;
    const std::function<void(WalEntry &&)> sink =
        [&pending](WalEntry &&e) { pending.push_back(std::move(e)); };
    const std::string err = scanWal(path, stats, &sink);
    if (!err.empty()) {
        res.error = "wal replay: " + err;
        return res;
    }
    if (store.size() < stats.baseRecords) {
        res.error = "wal replay: journal extends a " +
                    std::to_string(stats.baseRecords) +
                    "-record snapshot but the store holds " +
                    std::to_string(store.size());
        return res;
    }
    const std::size_t skip = store.size() - stats.baseRecords;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (i < skip) {
            ++stats.skipped;
            continue;
        }
        WalEntry &e = pending[i];
        BitVec bits(static_cast<std::size_t>(e.universe));
        for (const std::uint32_t pos : e.positions)
            bits.set(pos);
        store.add(std::move(e.label),
                  Fingerprint(std::move(bits), e.sources));
        ++stats.applied;
    }
    res.value = stats;
    return res;
}

WalVerifyResult
Wal::verify(const std::string &path)
{
    WalVerifyResult out;
    if (::access(path.c_str(), F_OK) != 0) {
        out.health = WalHealth::Missing;
        out.detail = "no journal file";
        return out;
    }
    WalReplayStats stats;
    const std::string err = scanWal(path, stats, nullptr);
    out.entries = stats.entries;
    out.baseRecords = stats.baseRecords;
    out.goodBytes = stats.goodBytes;
    if (!err.empty()) {
        out.health = WalHealth::Corrupt;
        out.detail = err;
        return out;
    }
    if (stats.tornTail) {
        out.health = WalHealth::Recoverable;
        out.detail = "torn tail after " +
                     std::to_string(stats.entries) +
                     " intact entries (discarded on replay)";
        return out;
    }
    out.health = WalHealth::Clean;
    return out;
}

} // namespace pcause
