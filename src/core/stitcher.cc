#include "core/stitcher.hh"

#include <algorithm>
#include <set>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

/** One discovered system-level fingerprint. */
struct Stitcher::Cluster
{
    /** Pages keyed by position relative to the cluster origin. */
    std::map<std::int64_t, PageFingerprint> pages;

    /** Samples folded in. */
    std::size_t samples = 0;
};

/** Index payload: a page of some cluster, in that cluster's frame
 *  at entry-creation time (translated through forwarding later). */
struct Stitcher::IndexEntry
{
    std::size_t cluster;
    std::int64_t relPos;
};

Stitcher::Stitcher(const StitchParams &params)
    : prm(params)
{
    if (prm.pageThreshold <= 0.0 || prm.pageThreshold >= 1.0)
        fatal("Stitcher: pageThreshold must be in (0,1)");
    if (prm.verifyFraction <= 0.0 || prm.verifyFraction > 1.0)
        fatal("Stitcher: verifyFraction must be in (0,1]");
    if (prm.maxBitsPerPage < 4)
        fatal("Stitcher: maxBitsPerPage must be at least 4");
}

Stitcher::~Stitcher() = default;

SparseBitset
Stitcher::truncate(const SparseBitset &obs) const
{
    if (obs.count() <= prm.maxBitsPerPage)
        return obs;
    // Keep the lowest-indexed positions: within a page all recorded
    // cells are already the most volatile ~1%, and a deterministic
    // subset keeps repeated observations of the same page aligned.
    std::vector<std::uint32_t> kept(
        obs.positions().begin(),
        obs.positions().begin() +
            static_cast<std::ptrdiff_t>(prm.maxBitsPerPage));
    return SparseBitset(obs.universe(), std::move(kept));
}

std::vector<SparseBitset>
Stitcher::truncateAll(const std::vector<SparseBitset> &pages) const
{
    std::vector<SparseBitset> out;
    out.reserve(pages.size());
    for (const SparseBitset &obs : pages)
        out.push_back(truncate(obs));
    return out;
}

std::size_t
Stitcher::resolve(std::size_t id) const
{
    PC_ASSERT(id < forwarding.size(), "bad cluster id");
    while (forwarding[id] != id)
        id = forwarding[id];
    return id;
}

void
Stitcher::probePages(const std::vector<SparseBitset> &pages,
                     std::size_t begin, std::size_t end,
                     VoteMap &votes, StitchStats &local) const
{
    for (std::size_t i = begin; i < end; ++i) {
        ++local.pagesProbed;
        const SparseBitset &obs = pages[i]; // pre-truncated
        const auto keys = PageFingerprint::matchKeys(obs);
        std::set<std::pair<std::size_t, std::int64_t>> seen;
        for (auto key : keys) {
            auto it = index.find(key);
            if (it == index.end())
                continue;
            for (const IndexEntry &entry : it->second) {
                // Translate the entry through any merges since it
                // was created.
                std::size_t cid = entry.cluster;
                std::int64_t pos = entry.relPos;
                while (forwarding[cid] != cid) {
                    pos += mergeOffsetOf(cid);
                    cid = forwarding[cid];
                }
                if (!clusters[cid])
                    continue;
                if (!seen.insert({cid, pos}).second)
                    continue;
                auto page_it = clusters[cid]->pages.find(pos);
                if (page_it == clusters[cid]->pages.end())
                    continue;
                ++local.candidateChecks;
                const double d = page_it->second.distanceTo(obs);
                if (d < prm.pageThreshold) {
                    ++local.pageMatches;
                    // Sample page i sits at cluster position pos, so
                    // the sample origin is pos - i.
                    ++votes[cid][pos - static_cast<std::int64_t>(i)];
                }
            }
        }
    }
}

Stitcher::VoteMap
Stitcher::collectVotes(const std::vector<SparseBitset> &pages,
                       bool count_stats) const
{
    // Probing only reads cluster state; votes and counters
    // accumulate into per-shard locals merged below, so the page
    // loop can fan out across the pool when one is attached.
    const std::size_t nshards =
        (workers && pages.size() >= 2 * workers->size())
            ? workers->size()
            : 1;

    std::vector<VoteMap> shard_votes(nshards);
    std::vector<StitchStats> shard_stats(nshards);
    if (nshards == 1) {
        probePages(pages, 0, pages.size(), shard_votes[0],
                   shard_stats[0]);
    } else {
        workers->parallelChunks(
            0, pages.size(),
            [&](std::size_t b, std::size_t e, std::size_t c) {
                probePages(pages, b, e, shard_votes[c],
                           shard_stats[c]);
            });
    }

    VoteMap votes = std::move(shard_votes[0]);
    for (std::size_t s = 1; s < nshards; ++s) {
        for (auto &[cid, deltas] : shard_votes[s]) {
            auto &dst = votes[cid];
            for (auto &[delta, n] : deltas)
                dst[delta] += n;
        }
    }
    if (count_stats) {
        std::lock_guard<std::mutex> lock(statsMutex);
        for (const auto &s : shard_stats) {
            counters.pagesProbed += s.pagesProbed;
            counters.candidateChecks += s.candidateChecks;
            counters.pageMatches += s.pageMatches;
        }
    }
    return votes;
}

bool
Stitcher::verifyAlignment(const std::vector<SparseBitset> &pages,
                          const Cluster &cluster,
                          std::int64_t sample_origin) const
{
    std::size_t checked = 0, matched = 0;
    for (std::size_t i = 0;
         i < pages.size() && checked < prm.maxVerifyPages; ++i) {
        auto it = cluster.pages.find(
            sample_origin + static_cast<std::int64_t>(i));
        if (it == cluster.pages.end())
            continue;
        const SparseBitset &obs = pages[i]; // pre-truncated
        if (obs.count() < 3)
            continue;
        ++checked;
        if (it->second.distanceTo(obs) < prm.pageThreshold)
            ++matched;
    }
    if (checked == 0) {
        // No overlapping page carried enough recorded bits to
        // check: there is no evidence for the alignment, and the
        // matched/checked ratio below would be 0/0.
        return false;
    }
    return matched >= prm.minVerifyMatches &&
        static_cast<double>(matched) / checked >= prm.verifyFraction;
}

void
Stitcher::indexPage(std::size_t cluster_id, std::int64_t rel_pos,
                    const PageFingerprint &fp)
{
    for (auto key : fp.matchKeys())
        index[key].push_back({cluster_id, rel_pos});
}

void
Stitcher::foldSample(std::size_t cluster_id,
                     const std::vector<SparseBitset> &pages,
                     std::int64_t sample_origin)
{
    Cluster &c = *clusters[cluster_id];
    for (std::size_t i = 0; i < pages.size(); ++i) {
        const std::int64_t pos =
            sample_origin + static_cast<std::int64_t>(i);
        const SparseBitset &obs = pages[i]; // pre-truncated
        auto it = c.pages.find(pos);
        if (it != c.pages.end()) {
            it->second.augment(obs);
        } else {
            PageFingerprint fp(obs);
            indexPage(cluster_id, pos, fp);
            c.pages.emplace(pos, std::move(fp));
        }
    }
    ++c.samples;
}

void
Stitcher::mergeClusters(std::size_t dst, std::size_t src,
                        std::int64_t src_origin)
{
    PC_ASSERT(dst != src, "cannot merge a cluster with itself");
    Cluster &d = *clusters[dst];
    Cluster &s = *clusters[src];
    for (auto &[rel, fp] : s.pages) {
        const std::int64_t pos = src_origin + rel;
        auto it = d.pages.find(pos);
        if (it != d.pages.end()) {
            it->second.augment(fp.bits());
        } else {
            indexPage(dst, pos, fp);
            d.pages.emplace(pos, std::move(fp));
        }
    }
    d.samples += s.samples;
    clusters[src].reset();
    forwarding[src] = dst;
    mergeOffsets[src] = src_origin;
    ++counters.merges;
}

std::size_t
Stitcher::addSample(const std::vector<SparseBitset> &pages)
{
    return addSampleTruncated(truncateAll(pages));
}

std::size_t
Stitcher::addSampleTruncated(const std::vector<SparseBitset> &pages)
{
    ++counters.samplesAdded;

    auto votes = collectVotes(pages, true);

    // For every candidate cluster keep its best-supported alignment
    // and verify it across the full overlap.
    struct Verified
    {
        std::size_t cluster;
        std::int64_t origin;
        std::size_t support;
    };
    std::vector<Verified> verified;
    for (const auto &[cid, deltas] : votes) {
        auto best = std::max_element(
            deltas.begin(), deltas.end(),
            [](const auto &a, const auto &b) {
                return a.second < b.second;
            });
        if (verifyAlignment(pages, *clusters[cid], best->first)) {
            verified.push_back({cid, best->first, best->second});
        } else {
            ++counters.rejectedMerges;
        }
    }

    if (verified.empty()) {
        clusters.push_back(std::make_unique<Cluster>());
        forwarding.push_back(clusters.size() - 1);
        mergeOffsets.push_back(0);
        const std::size_t id = clusters.size() - 1;
        foldSample(id, pages, 0);
        return id;
    }

    // Fold into the largest verified cluster, then pull in any other
    // verified clusters — the sample is the bridge between them.
    std::sort(verified.begin(), verified.end(),
              [this](const Verified &a, const Verified &b) {
                  return clusters[a.cluster]->pages.size() >
                      clusters[b.cluster]->pages.size();
              });
    const std::size_t dst = verified.front().cluster;
    const std::int64_t dst_origin = verified.front().origin;
    foldSample(dst, pages, dst_origin);

    for (std::size_t k = 1; k < verified.size(); ++k) {
        const std::size_t src = verified[k].cluster;
        if (resolve(src) == resolve(dst))
            continue;
        // The sample sits at dst_origin in dst and at
        // verified[k].origin in src, so src's frame starts at
        // dst_origin - verified[k].origin inside dst.
        mergeClusters(dst, src, dst_origin - verified[k].origin);
    }
    return dst;
}

std::vector<std::size_t>
Stitcher::addSamples(
    const std::vector<std::vector<SparseBitset>> &samples)
{
    std::vector<const std::vector<SparseBitset> *> borrowed;
    borrowed.reserve(samples.size());
    for (const auto &pages : samples)
        borrowed.push_back(&pages);
    return addSamples(borrowed);
}

std::vector<std::size_t>
Stitcher::addSamples(
    const std::vector<const std::vector<SparseBitset> *> &samples)
{
    // Truncation is a pure, idempotent per-page function, so every
    // sample is truncated up front — in parallel when a pool is
    // attached — and the per-sample fold skips the three inline
    // re-truncations addSample() pays. Folding mutates the cluster
    // state each sample's probing reads, so samples stay strictly
    // sequential — the remaining parallelism is inside each
    // sample's collectVotes. Cluster evolution is therefore
    // identical to serial one-by-one ingest.
    std::vector<std::vector<SparseBitset>> truncated(samples.size());
    const auto truncateSample = [&](std::size_t i) {
        PC_ASSERT(samples[i], "addSamples: null sample");
        truncated[i] = truncateAll(*samples[i]);
    };
    if (workers && workers->size() > 1 && samples.size() > 1) {
        workers->parallelFor(0, samples.size(), truncateSample);
    } else {
        for (std::size_t i = 0; i < samples.size(); ++i)
            truncateSample(i);
    }
    std::vector<std::size_t> ids;
    ids.reserve(samples.size());
    for (const auto &pages : truncated)
        ids.push_back(addSampleTruncated(pages));
    return ids;
}

std::size_t
Stitcher::numSuspectedChips() const
{
    std::size_t n = 0;
    for (const auto &c : clusters)
        n += c != nullptr;
    return n;
}

std::size_t
Stitcher::totalFingerprintedPages() const
{
    std::size_t n = 0;
    for (const auto &c : clusters) {
        if (c)
            n += c->pages.size();
    }
    return n;
}

std::size_t
Stitcher::clusterSpan(std::size_t id) const
{
    const std::size_t live = resolve(id);
    return clusters[live] ? clusters[live]->pages.size() : 0;
}

std::size_t
Stitcher::clusterSamples(std::size_t id) const
{
    const std::size_t live = resolve(id);
    return clusters[live] ? clusters[live]->samples : 0;
}

std::optional<std::size_t>
Stitcher::matchSample(const std::vector<SparseBitset> &raw_pages) const
{
    const std::vector<SparseBitset> pages = truncateAll(raw_pages);
    auto votes = collectVotes(pages, false);

    std::optional<std::size_t> best;
    std::size_t best_support = 0;
    for (const auto &[cid, deltas] : votes) {
        auto top = std::max_element(
            deltas.begin(), deltas.end(),
            [](const auto &a, const auto &b) {
                return a.second < b.second;
            });
        if (top->second > best_support &&
            verifyAlignment(pages, *clusters[cid], top->first)) {
            best = cid;
            best_support = top->second;
        }
    }
    return best;
}

std::int64_t
Stitcher::mergeOffsetOf(std::size_t id) const
{
    return mergeOffsets[id];
}

} // namespace pcause
