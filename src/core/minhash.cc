#include "core/minhash.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"
#include "util/rng.hh"

namespace pcause
{

MinHashSignature
minhashSignature(const BitVec &bits, const MinHashParams &params)
{
    PC_ASSERT(params.numHashes > 0 && params.bands > 0 &&
                  params.numHashes % params.bands == 0,
              "minhashSignature: bands must divide numHashes");

    const std::uint32_t k = params.numHashes;
    MinHashSignature sig(k, ~std::uint32_t{0});

    // Per-permutation keys, derived once per call: permutation j is
    // pos -> mix64(key_j, pos), a counter-based hash evaluated only
    // at the set positions.
    std::vector<std::uint64_t> keys(k);
    for (std::uint32_t j = 0; j < k; ++j)
        keys[j] = mix64(params.seed, j + 1);

    const auto &words = bits.words();
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            const auto bit =
                static_cast<std::uint64_t>(std::countr_zero(w));
            const std::uint64_t pos = wi * BitVec::wordBits + bit;
            for (std::uint32_t j = 0; j < k; ++j) {
                const auto h =
                    static_cast<std::uint32_t>(mix64(keys[j], pos));
                sig[j] = std::min(sig[j], h);
            }
            w &= w - 1;
        }
    }
    return sig;
}

double
signatureSimilarity(const MinHashSignature &a, const MinHashSignature &b)
{
    PC_ASSERT(a.size() == b.size() && !a.empty(),
              "signatureSimilarity: signature length mismatch");
    std::size_t agree = 0;
    for (std::size_t j = 0; j < a.size(); ++j)
        agree += a[j] == b[j];
    return static_cast<double>(agree) / static_cast<double>(a.size());
}

LshIndex::LshIndex(const MinHashParams &params)
    : prm(params), bandBuckets(params.bands)
{
    PC_ASSERT(prm.numHashes > 0 && prm.bands > 0 &&
                  prm.numHashes % prm.bands == 0,
              "LshIndex: bands must divide numHashes");
}

std::uint64_t
LshIndex::bandKey(const MinHashSignature &sig, std::uint32_t band) const
{
    // Fold the band's rows into one 64-bit key; the band index is
    // mixed in so identical row values in different bands do not
    // alias (each band has its own bucket map anyway, but distinct
    // keys keep the occupancy diagnostics honest).
    const std::uint32_t r = prm.rows();
    std::uint64_t key = mix64(prm.seed, 0x62616e64ull + band);
    for (std::uint32_t j = 0; j < r; ++j)
        key = mix64(key, sig[band * r + j]);
    return key;
}

void
LshIndex::add(std::size_t record, const MinHashSignature &sig)
{
    PC_ASSERT(sig.size() == prm.numHashes,
              "LshIndex::add: signature length mismatch");
    for (std::uint32_t band = 0; band < prm.bands; ++band) {
        bandBuckets[band][bandKey(sig, band)].push_back(
            static_cast<std::uint32_t>(record));
    }
    ++numRecords;
}

std::vector<std::size_t>
LshIndex::candidates(const MinHashSignature &sig) const
{
    PC_ASSERT(sig.size() == prm.numHashes,
              "LshIndex::candidates: signature length mismatch");
    std::vector<std::uint32_t> hits;
    for (std::uint32_t band = 0; band < prm.bands; ++band) {
        const auto &buckets = bandBuckets[band];
        const auto it = buckets.find(bandKey(sig, band));
        if (it != buckets.end())
            hits.insert(hits.end(), it->second.begin(),
                        it->second.end());
    }
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    return std::vector<std::size_t>(hits.begin(), hits.end());
}

void
LshIndex::clear()
{
    for (auto &buckets : bandBuckets)
        buckets.clear();
    numRecords = 0;
}

LshIndex::Occupancy
LshIndex::occupancy() const
{
    Occupancy occ;
    for (const auto &buckets : bandBuckets) {
        occ.buckets += buckets.size();
        for (const auto &[key, ids] : buckets)
            occ.largestBucket = std::max(occ.largestBucket, ids.size());
    }
    return occ;
}

} // namespace pcause
