#include "core/minhash.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

namespace pcause
{

namespace
{

/**
 * Per-permutation hash keys, derived once per call and handed to
 * the SIMD kernels in prepared (half-evaluated mix64) form — an
 * algebraic refactoring, so signatures are unchanged (they persist
 * in PCDB files).
 */
std::vector<std::uint64_t>
preparedKeys(const MinHashParams &params)
{
    std::vector<std::uint64_t> keys(params.numHashes);
    for (std::uint32_t j = 0; j < params.numHashes; ++j)
        keys[j] = mix64(params.seed, j + 1);
    simd::prepareMinhashKeys(keys.data(), params.numHashes,
                             keys.data());
    return keys;
}

void
checkParams(const MinHashParams &params, const char *who)
{
    PC_ASSERT(params.numHashes > 0 && params.bands > 0 &&
                  params.numHashes % params.bands == 0,
              who);
}

} // anonymous namespace

MinHashSignature
minhashSignature(const BitVec &bits, const MinHashParams &params)
{
    checkParams(params, "minhashSignature: bands must divide numHashes");

    const std::uint32_t k = params.numHashes;
    MinHashSignature sig(k, ~std::uint32_t{0});

    // Permutation j is pos -> mix64(key_j, pos), a counter-based
    // hash evaluated only at the set positions; the min-reduction
    // over permutation lanes runs in the dispatched SIMD kernel.
    const std::vector<std::uint64_t> ha = preparedKeys(params);

    const auto &words = bits.words();
    simd::minhashSignatureWords(words.data(), words.size(), ha.data(),
                                k, sig.data());
    return sig;
}

MinHashSketch
minhashSketch(const BitVec &bits, const MinHashParams &params)
{
    checkParams(params, "minhashSketch: bands must divide numHashes");

    const std::uint32_t k = params.numHashes;
    MinHashSketch sk;
    sk.primary.assign(k, ~std::uint32_t{0});
    sk.second.assign(k, ~std::uint32_t{0});

    const std::vector<std::uint64_t> ha = preparedKeys(params);

    const auto &words = bits.words();
    simd::minhashSketchWords(words.data(), words.size(), ha.data(), k,
                             sk.primary.data(), sk.second.data());
    // Permutations that saw < 2 distinct values keep the sentinel
    // in `second`; collapse it onto the minimum so substitution
    // reproduces the primary key (which the probe loop then skips).
    for (std::uint32_t j = 0; j < k; ++j) {
        if (sk.second[j] == ~std::uint32_t{0})
            sk.second[j] = sk.primary[j];
    }
    return sk;
}

MinHashSignature
minhashSignatureWitness(const BitVec &bits,
                        const MinHashParams &params,
                        MinHashWitness &witness_out)
{
    checkParams(params,
                "minhashSignatureWitness: bands must divide numHashes");
    const std::uint32_t k = params.numHashes;
    MinHashSignature sig(k, ~std::uint32_t{0});
    witness_out.assign(k, ~std::uint32_t{0});

    // Scalar mix64 walk: identical values to the SIMD kernels (the
    // prepared-key form is algebraically mix64; prop_simd pins it),
    // with the first position attaining each minimum retained.
    std::vector<std::uint64_t> keys(k);
    for (std::uint32_t j = 0; j < k; ++j)
        keys[j] = mix64(params.seed, j + 1);
    for (const std::size_t p : bits.setBits()) {
        for (std::uint32_t j = 0; j < k; ++j) {
            const auto h =
                static_cast<std::uint32_t>(mix64(keys[j], p));
            if (h < sig[j]) {
                sig[j] = h;
                witness_out[j] = static_cast<std::uint32_t>(p);
            }
        }
    }
    return sig;
}

bool
minhashReSign(const BitVec &bits, const MinHashParams &params,
              MinHashSignature &sig, MinHashWitness &witness)
{
    checkParams(params, "minhashReSign: bands must divide numHashes");
    const std::uint32_t k = params.numHashes;
    PC_ASSERT(sig.size() == k && witness.size() == k,
              "minhashReSign: signature/witness length mismatch");

    // Pass 1: which permutations lost their witness? A sentinel
    // witness means every position hashed to the sentinel value,
    // which stays the minimum of any subset — skip those too.
    std::vector<std::uint32_t> lost;
    for (std::uint32_t j = 0; j < k; ++j) {
        const std::uint32_t w = witness[j];
        if (w != ~std::uint32_t{0} && !bits.get(w))
            lost.push_back(j);
    }
    if (lost.empty())
        return false;

    // Pass 2: recompute only the lost permutations over the shrunk
    // set (one position walk for all of them together).
    bool changed = false;
    std::vector<std::uint64_t> keys(lost.size());
    std::vector<std::uint32_t> best(lost.size(), ~std::uint32_t{0});
    std::vector<std::uint32_t> at(lost.size(), ~std::uint32_t{0});
    for (std::size_t i = 0; i < lost.size(); ++i)
        keys[i] = mix64(params.seed, lost[i] + 1);
    for (const std::size_t p : bits.setBits()) {
        for (std::size_t i = 0; i < lost.size(); ++i) {
            const auto h =
                static_cast<std::uint32_t>(mix64(keys[i], p));
            if (h < best[i]) {
                best[i] = h;
                at[i] = static_cast<std::uint32_t>(p);
            }
        }
    }
    for (std::size_t i = 0; i < lost.size(); ++i) {
        const std::uint32_t j = lost[i];
        changed |= sig[j] != best[i];
        sig[j] = best[i];
        witness[j] = at[i];
    }
    return changed;
}

double
signatureSimilarity(const MinHashSignature &a, const MinHashSignature &b)
{
    PC_ASSERT(a.size() == b.size() && !a.empty(),
              "signatureSimilarity: signature length mismatch");
    std::size_t agree = 0;
    for (std::size_t j = 0; j < a.size(); ++j)
        agree += a[j] == b[j];
    return static_cast<double>(agree) / static_cast<double>(a.size());
}

std::uint64_t
lshBandKey(const MinHashParams &params, const MinHashSignature &sig,
           std::uint32_t band)
{
    // Fold the band's rows into one 64-bit key; the band index is
    // mixed in so identical row values in different bands do not
    // alias (each band has its own bucket map anyway, but distinct
    // keys keep the occupancy diagnostics honest).
    const std::uint32_t r = params.rows();
    std::uint64_t key = mix64(params.seed, 0x62616e64ull + band);
    for (std::uint32_t j = 0; j < r; ++j)
        key = mix64(key, sig[band * r + j]);
    return key;
}

std::uint64_t
lshBandKeySub(const MinHashParams &params, const MinHashSignature &sig,
              std::uint32_t band, std::uint32_t sub_row,
              std::uint32_t sub_val)
{
    const std::uint32_t r = params.rows();
    std::uint64_t key = mix64(params.seed, 0x62616e64ull + band);
    for (std::uint32_t j = 0; j < r; ++j) {
        key = mix64(key, j == sub_row ? sub_val
                                      : sig[band * r + j]);
    }
    return key;
}

std::vector<std::uint64_t>
lshProbeKeys(const MinHashParams &params, const MinHashSketch &sketch,
             std::uint32_t band)
{
    const std::uint32_t probes = params.effectiveProbes();
    std::vector<std::uint64_t> keys;
    keys.reserve(probes);
    const std::uint64_t primary =
        lshBandKey(params, sketch.primary, band);
    keys.push_back(primary);
    const std::uint32_t r = params.rows();
    for (std::uint32_t row = 0;
         row < r && keys.size() < probes; ++row) {
        const std::uint32_t sub =
            sketch.second[band * r + row];
        if (sub == sketch.primary[band * r + row])
            continue; // substitution reproduces the primary bucket
        keys.push_back(
            lshBandKeySub(params, sketch.primary, band, row, sub));
    }
    return keys;
}

LshIndex::LshIndex(const MinHashParams &params)
    : prm(params), bandBuckets(params.bands)
{
    checkParams(prm, "LshIndex: bands must divide numHashes");
}

void
LshIndex::add(std::size_t record, const MinHashSignature &sig)
{
    PC_ASSERT(sig.size() == prm.numHashes,
              "LshIndex::add: signature length mismatch");
    for (std::uint32_t band = 0; band < prm.bands; ++band) {
        bandBuckets[band][lshBandKey(prm, sig, band)].push_back(
            static_cast<std::uint32_t>(record));
    }
    ++numRecords;
}

void
LshIndex::addAll(std::size_t first_record,
                 const std::vector<MinHashSignature> &sigs,
                 ThreadPool *pool)
{
    // Bands shard naturally: each band's bucket map is touched by
    // exactly one task, and within a band records are inserted in
    // ascending id order — the same structure serial add() builds.
    const auto insertBand = [&](std::size_t band) {
        auto &buckets = bandBuckets[band];
        for (std::size_t i = 0; i < sigs.size(); ++i) {
            PC_ASSERT(sigs[i].size() == prm.numHashes,
                      "LshIndex::addAll: signature length mismatch");
            buckets[lshBandKey(prm, sigs[i],
                               static_cast<std::uint32_t>(band))]
                .push_back(static_cast<std::uint32_t>(
                    first_record + i));
        }
    };
    if (pool && pool->size() > 1) {
        pool->parallelFor(0, prm.bands, insertBand);
    } else {
        for (std::size_t band = 0; band < prm.bands; ++band)
            insertBand(band);
    }
    numRecords += sigs.size();
}

void
LshIndex::update(std::size_t record, const MinHashSignature &old_sig,
                 const MinHashSignature &new_sig)
{
    PC_ASSERT(old_sig.size() == prm.numHashes &&
                  new_sig.size() == prm.numHashes,
              "LshIndex::update: signature length mismatch");
    const auto id = static_cast<std::uint32_t>(record);
    for (std::uint32_t band = 0; band < prm.bands; ++band) {
        const std::uint64_t old_key = lshBandKey(prm, old_sig, band);
        const std::uint64_t new_key = lshBandKey(prm, new_sig, band);
        if (old_key == new_key)
            continue;
        auto &buckets = bandBuckets[band];
        const auto bucket_it = buckets.find(old_key);
        PC_ASSERT(bucket_it != buckets.end(),
                  "LshIndex::update: record not under old signature");
        auto &old_ids = bucket_it->second;
        const auto pos =
            std::lower_bound(old_ids.begin(), old_ids.end(), id);
        PC_ASSERT(pos != old_ids.end() && *pos == id,
                  "LshIndex::update: record not under old signature");
        old_ids.erase(pos);
        if (old_ids.empty())
            buckets.erase(bucket_it); // keep occupancy() honest
        auto &new_ids = buckets[new_key];
        new_ids.insert(
            std::lower_bound(new_ids.begin(), new_ids.end(), id), id);
    }
}

std::vector<std::size_t>
LshIndex::candidates(const MinHashSignature &sig) const
{
    PC_ASSERT(sig.size() == prm.numHashes,
              "LshIndex::candidates: signature length mismatch");
    std::vector<std::uint32_t> hits;
    for (std::uint32_t band = 0; band < prm.bands; ++band) {
        const auto &buckets = bandBuckets[band];
        const auto it = buckets.find(lshBandKey(prm, sig, band));
        if (it != buckets.end())
            hits.insert(hits.end(), it->second.begin(),
                        it->second.end());
    }
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    return std::vector<std::size_t>(hits.begin(), hits.end());
}

std::vector<std::size_t>
LshIndex::candidates(const MinHashSketch &sketch) const
{
    PC_ASSERT(sketch.primary.size() == prm.numHashes &&
                  sketch.second.size() == prm.numHashes,
              "LshIndex::candidates: sketch length mismatch");
    std::vector<std::uint32_t> hits;
    for (std::uint32_t band = 0; band < prm.bands; ++band) {
        const auto &buckets = bandBuckets[band];
        for (const std::uint64_t key :
             lshProbeKeys(prm, sketch, band)) {
            const auto it = buckets.find(key);
            if (it != buckets.end())
                hits.insert(hits.end(), it->second.begin(),
                            it->second.end());
        }
    }
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    return std::vector<std::size_t>(hits.begin(), hits.end());
}

void
LshIndex::clear()
{
    for (auto &buckets : bandBuckets)
        buckets.clear();
    numRecords = 0;
}

LshIndex::Occupancy
LshIndex::occupancy() const
{
    Occupancy occ;
    for (const auto &buckets : bandBuckets) {
        occ.buckets += buckets.size();
        for (const auto &[key, ids] : buckets)
            occ.largestBucket = std::max(occ.largestBucket, ids.size());
    }
    return occ;
}

std::vector<std::pair<std::uint64_t, std::uint32_t>>
LshIndex::bandEntries(std::uint32_t band) const
{
    PC_ASSERT(band < prm.bands, "LshIndex::bandEntries: band range");
    std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
    entries.reserve(numRecords);
    for (const auto &[key, ids] : bandBuckets[band]) {
        for (const std::uint32_t id : ids)
            entries.emplace_back(key, id);
    }
    std::sort(entries.begin(), entries.end());
    return entries;
}

} // namespace pcause
