/**
 * @file
 * Distance metrics between error patterns (paper Algorithm 3).
 *
 * The paper's metric is a modified Jaccard index: count the
 * fingerprint's error bits that are absent from the observed error
 * string, normalized to a [0,1] range. Crucially it ignores *extra*
 * errors in the observation, so a chip characterized at 99%
 * accuracy still matches its own outputs produced at 95% — the
 * failure mode that sinks plain Hamming distance (Section 5.2).
 *
 * Plain Jaccard and normalized Hamming are provided for the
 * ablation bench that justifies the design choice.
 */

#ifndef PCAUSE_CORE_DISTANCE_HH
#define PCAUSE_CORE_DISTANCE_HH

#include "util/bitvec.hh"
#include "util/sparse_bitset.hh"

namespace pcause
{

/**
 * The paper's Algorithm 3 on dense bit vectors.
 *
 * Computes |fingerprint \ errorString| / |fingerprint| after the
 * footnote-2 swap rule: whichever operand has fewer set bits plays
 * the fingerprint role, so the metric is symmetric in practice and
 * robust to approximation-level mismatch. Returns a value in
 * [0,1]; two empty operands are defined as distance 0. (The paper's
 * prose normalizes by the fingerprint weight; its pseudocode by the
 * error-string weight — the prose version is the one that matches
 * the published figures, and is what this function implements.)
 */
double modifiedJaccard(const BitVec &error_string,
                       const BitVec &fingerprint);

/**
 * Bounded Algorithm 3: modifiedJaccard() with an early exit once
 * the distance provably exceeds @p bound.
 *
 * The distance is d/wf where d = |fp \ es| only ever grows as the
 * words are scanned, so the running d/wf is a monotone lower bound
 * on the final value: the moment it exceeds @p bound, no suffix of
 * the scan can bring the result back under it. Returns the exact
 * distance when it is <= @p bound; otherwise returns the (partial)
 * lower bound reached, which is itself > @p bound. Callers that
 * compare the result against thresholds <= @p bound therefore get
 * verdicts identical to the unbounded metric. When @p pruned is
 * non-null it is set to whether the scan exited early.
 */
double modifiedJaccardBounded(const BitVec &error_string,
                              const BitVec &fingerprint,
                              double bound,
                              bool *pruned = nullptr);

/**
 * modifiedJaccardBounded() with the error string's popcount
 * precomputed: batch scans hash the query operand once instead of
 * once per candidate (the sparse path has always worked this way).
 * @p es_weight must equal error_string.popcount().
 */
double modifiedJaccardBounded(const BitVec &error_string,
                              std::size_t es_weight,
                              const BitVec &fingerprint,
                              double bound,
                              bool *pruned = nullptr);

/** Algorithm 3 on sparse page-level patterns. */
double modifiedJaccard(const SparseBitset &error_string,
                       const SparseBitset &fingerprint);

/**
 * Bounded Algorithm 3 with a sparse fingerprint against a dense
 * error string — the kernel behind the FingerprintStore's position
 * arena and mmap-ed v3 databases, where fingerprints are ~256
 * positions out of 8192 bits and materializing a dense BitVec per
 * record would waste ~30x the memory traffic.
 *
 * Semantics are bit-identical to modifiedJaccardBounded() on
 * (error_string, dense(fingerprint)): the same footnote-2 swap rule
 * (the lower-weight operand plays the fingerprint role), the same
 * integer early-exit limit, and the same final double division, so
 * verdicts and reported distances cannot drift between the dense
 * and sparse paths. When the scan exits early the returned value is
 * a lower bound > @p bound (its exact magnitude may differ from the
 * dense kernel's partial count, which is word-granular — both are
 * pruned values that no caller compares beyond "> bound").
 *
 * @p es_weight must equal error_string.popcount() (passed in so
 * batch scans hash it once per query, not once per record), and
 * @p fingerprint.universe must equal error_string.size().
 */
double modifiedJaccardSparseBounded(const BitVec &error_string,
                                    std::size_t es_weight,
                                    const SparseView &fingerprint,
                                    double bound,
                                    bool *pruned = nullptr);

/** Classic Jaccard distance 1 - |A∩B| / |A∪B| (ablation baseline). */
double jaccardDistance(const BitVec &a, const BitVec &b);

/**
 * Hamming distance normalized by vector length (the naive metric
 * the paper argues against in Section 5.2).
 */
double normalizedHamming(const BitVec &a, const BitVec &b);

/** Ablation-selectable metric kinds. */
enum class DistanceMetric
{
    ModifiedJaccard, //!< the paper's Algorithm 3
    Jaccard,         //!< classic Jaccard distance
    Hamming,         //!< normalized Hamming distance
};

/** Dispatch on @p metric. */
double distance(DistanceMetric metric, const BitVec &a, const BitVec &b);

} // namespace pcause

#endif // PCAUSE_CORE_DISTANCE_HH
