/**
 * @file
 * Chip characterization (paper Algorithm 1).
 *
 * Characterization turns a set of approximate results from one chip
 * into that chip's fingerprint: XOR each result with its exact
 * value, then intersect the error strings. Used directly by the
 * supply-chain attacker, who controls the chip and its inputs.
 */

#ifndef PCAUSE_CORE_CHARACTERIZE_HH
#define PCAUSE_CORE_CHARACTERIZE_HH

#include <vector>

#include "core/fingerprint.hh"
#include "util/bitvec.hh"

namespace pcause
{

/**
 * Algorithm 1 (CHARACTERIZE): fingerprint a chip from approximate
 * results sharing one exact value.
 *
 * @param approx_results  approximate outputs of the chip
 * @param exact           the value each result should have held
 */
Fingerprint characterize(const std::vector<BitVec> &approx_results,
                         const BitVec &exact);

/**
 * Generalization for results with per-result exact values (the
 * eavesdropping attacker rarely sees the same data twice).
 */
Fingerprint characterize(const std::vector<BitVec> &approx_results,
                         const std::vector<BitVec> &exact_values);

} // namespace pcause

#endif // PCAUSE_CORE_CHARACTERIZE_HH
