/**
 * @file
 * Chip characterization (paper Algorithm 1).
 *
 * Characterization turns a set of approximate results from one chip
 * into that chip's fingerprint: XOR each result with its exact
 * value, then intersect the error strings. Used directly by the
 * supply-chain attacker, who controls the chip and its inputs.
 */

#ifndef PCAUSE_CORE_CHARACTERIZE_HH
#define PCAUSE_CORE_CHARACTERIZE_HH

#include <vector>

#include "core/fingerprint.hh"
#include "util/bitvec.hh"

namespace pcause
{

class ThreadPool;

/**
 * Algorithm 1 (CHARACTERIZE): fingerprint a chip from approximate
 * results sharing one exact value.
 *
 * @param approx_results  approximate outputs of the chip
 * @param exact           the value each result should have held
 */
Fingerprint characterize(const std::vector<BitVec> &approx_results,
                         const BitVec &exact);

/**
 * Generalization for results with per-result exact values (the
 * eavesdropping attacker rarely sees the same data twice).
 */
Fingerprint characterize(const std::vector<BitVec> &approx_results,
                         const std::vector<BitVec> &exact_values);

/**
 * Parallel Algorithm 1: error strings are extracted concurrently
 * and intersected tree-wise across @p pool. Intersection is
 * associative and commutative, so the result is bit-identical to
 * the serial fold regardless of reduction shape.
 */
Fingerprint characterize(const std::vector<BitVec> &approx_results,
                         const BitVec &exact, ThreadPool &pool);

/** Parallel per-result-exact variant. */
Fingerprint characterize(const std::vector<BitVec> &approx_results,
                         const std::vector<BitVec> &exact_values,
                         ThreadPool &pool);

} // namespace pcause

#endif // PCAUSE_CORE_CHARACTERIZE_HH
