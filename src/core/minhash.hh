/**
 * @file
 * MinHash signatures and LSH candidate index over fingerprints.
 *
 * Algorithm 2 scans every known fingerprint per query; at the
 * "millions of users" population the roadmap targets, that linear
 * scan is the whole cost of identification. A fingerprint is a set
 * of bit positions and the Algorithm 3 distance is Jaccard-shaped,
 * so the standard sublinear tool applies: hash each fingerprint to
 * a short MinHash signature (k independent permutations of the
 * position universe), band the signature into LSH buckets, and only
 * run the exact distance kernel on records that collide with the
 * query in at least one band.
 *
 * The permutations reuse the counter-based idiom of the DRAM decay
 * engine: h_j(pos) = mix64(seed_j, pos) is a pure function of its
 * arguments, so signatures are deterministic, independent of
 * insertion or evaluation order, and cheap to compute incrementally
 * as records are added.
 *
 * Candidate-set growth is kept sublinear in the population by two
 * knobs working together: wide bands (4 rows per band, so a random
 * record collides with a query in a band with probability s^4 ~
 * 1e-7 at the between-class similarity of the bench populations)
 * and query-directed multi-probe — besides each band's primary
 * bucket, the query probes the buckets obtained by substituting one
 * row's value with that permutation's *second* minimum, recovering
 * near-misses where a noise bit of the query stole a single row.
 * Stored records are indexed exactly once; all extra probing is on
 * the query side, so the index itself does not grow.
 */

#ifndef PCAUSE_CORE_MINHASH_HH
#define PCAUSE_CORE_MINHASH_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bitvec.hh"

namespace pcause
{

class ThreadPool;

/**
 * Signature/banding tunables.
 *
 * Two signatures collide in a band when all rows of that band
 * agree, so the probability a record becomes a candidate at Jaccard
 * similarity s is 1 - (1 - s^rows)^bands per probed bucket. The
 * defaults (64 hashes, 16 bands of 4 rows, multi-probe) put the
 * per-band primary collision probability at s = 0.8 (a noisy
 * observation of a known chip) near 0.41 — a miss of all 16 bands
 * is ~2e-4 before multi-probe even helps — while a random
 * between-class pair (s ~ 0.016 for the bench populations) collides
 * with probability ~6e-8 per probe, which is what keeps the
 * candidate list from scaling with the population.
 */
struct MinHashParams
{
    /** Number of hash permutations (signature length k). */
    std::uint32_t numHashes = 64;

    /** Number of LSH bands; must divide numHashes. */
    std::uint32_t bands = 16;

    /** Base seed the per-permutation hash keys are derived from. */
    std::uint64_t seed = 0x6d696e68617368ull; // "minhash"

    /**
     * Bucket lookups per band on the query side: the primary bucket
     * plus up to (probes - 1) single-row second-minimum
     * substitutions, clamped to 1 + rows(). 1 disables multi-probe.
     * Query-time only — changing it never requires a reindex.
     */
    std::uint32_t probes = 8;

    /** Rows per band. */
    std::uint32_t rows() const { return numHashes / bands; }

    /** Bucket lookups per band after clamping. */
    std::uint32_t effectiveProbes() const
    {
        const std::uint32_t max_probes = 1 + rows();
        const std::uint32_t p = probes == 0 ? 1 : probes;
        return p < max_probes ? p : max_probes;
    }

    bool operator==(const MinHashParams &o) const
    {
        return numHashes == o.numHashes && bands == o.bands &&
               seed == o.seed && probes == o.probes;
    }
    bool operator!=(const MinHashParams &o) const { return !(*this == o); }
};

/**
 * A MinHash signature: element j is the minimum of h_j over the
 * set-bit positions. Empty sets produce all-ones sentinels (which
 * never collide with a non-empty signature except by 2^-32 chance
 * per row).
 */
using MinHashSignature = std::vector<std::uint32_t>;

/**
 * Query-side sketch: the signature plus, per permutation, the
 * second-smallest hash value — the substitution candidates
 * multi-probe uses. Positions whose permutation saw fewer than two
 * distinct values repeat the minimum (substituting it reproduces
 * the primary bucket, which the probe loop skips).
 */
struct MinHashSketch
{
    MinHashSignature primary;
    MinHashSignature second;
};

/**
 * Compute the signature of @p bits under @p params. Pure function
 * of (set bits, params): the same fingerprint yields the same
 * signature regardless of when or where it is hashed.
 */
MinHashSignature minhashSignature(const BitVec &bits,
                                  const MinHashParams &params);

/** Compute the signature plus second minima (query side). The
 *  primary component equals minhashSignature() exactly. */
MinHashSketch minhashSketch(const BitVec &bits,
                            const MinHashParams &params);

/**
 * Witness positions of a signature: element j is a set-bit position
 * achieving sig[j] (ties broken towards the lowest position), or the
 * all-ones sentinel when permutation j never beat the empty-set
 * sentinel. Witnesses are what make re-signing after a fingerprint
 * *shrink* cheap: a permutation's minimum can only change if its
 * witness position was removed.
 */
using MinHashWitness = std::vector<std::uint32_t>;

/**
 * minhashSignature() that also reports each permutation's witness
 * position. Signature values are identical to minhashSignature()
 * (same counter-based hash; prop_simd pins the kernels against
 * mix64). Intended for index-side records that will be re-signed
 * incrementally — it runs at cluster-creation rate, not per query.
 */
MinHashSignature minhashSignatureWitness(const BitVec &bits,
                                         const MinHashParams &params,
                                         MinHashWitness &witness_out);

/**
 * Incrementally re-sign @p sig after its underlying set shrank to
 * @p bits (every set bit of @p bits was set when @p sig/@p witness
 * were computed). Permutations whose witness position is still set
 * are untouched — removing other positions cannot lower a minimum,
 * and the witness still attains it — so only permutations that lost
 * their witness are recomputed (expected O(removed / weight) of the
 * k permutations, against k for a full re-hash). @p sig and
 * @p witness are updated in place to exactly
 * minhashSignatureWitness(bits); returns true iff any signature
 * *value* changed (band keys, and hence LSH buckets, depend only on
 * values).
 */
bool minhashReSign(const BitVec &bits, const MinHashParams &params,
                   MinHashSignature &sig, MinHashWitness &witness);

/**
 * Fraction of signature positions on which @p a and @p b agree —
 * an unbiased estimate of the Jaccard similarity of the underlying
 * sets. Signature lengths must match.
 */
double signatureSimilarity(const MinHashSignature &a,
                           const MinHashSignature &b);

/**
 * Bucket key of band @p band of @p sig under @p params — the fold
 * the in-memory index buckets by and the v3 on-disk LSH arrays are
 * sorted by, exposed so both agree on one definition.
 */
std::uint64_t lshBandKey(const MinHashParams &params,
                         const MinHashSignature &sig,
                         std::uint32_t band);

/**
 * lshBandKey() with row @p sub_row's value replaced by @p sub_val —
 * the multi-probe variant keys.
 */
std::uint64_t lshBandKeySub(const MinHashParams &params,
                            const MinHashSignature &sig,
                            std::uint32_t band, std::uint32_t sub_row,
                            std::uint32_t sub_val);

/**
 * All bucket keys band @p band of @p sketch probes under @p params:
 * the primary key first, then single-row substitutions in row order,
 * capped at effectiveProbes() and with keys equal to the primary
 * skipped. Shared by the in-memory index and the mmap-ed store so
 * their candidate sets are identical by construction.
 */
std::vector<std::uint64_t> lshProbeKeys(const MinHashParams &params,
                                        const MinHashSketch &sketch,
                                        std::uint32_t band);

/**
 * Banded LSH bucket index mapping signatures to record ids.
 *
 * The index is append-only (records are identified by the caller's
 * dense ids, as in FingerprintDb) and externally synchronized:
 * concurrent candidates() calls are safe against each other but not
 * against add() / addAll().
 */
class LshIndex
{
  public:
    explicit LshIndex(const MinHashParams &params = {});

    /** Parameters the index was built with. */
    const MinHashParams &params() const { return prm; }

    /** Number of records indexed. */
    std::size_t size() const { return numRecords; }

    /**
     * Index @p record under @p sig. Signature length must equal
     * params().numHashes.
     */
    void add(std::size_t record, const MinHashSignature &sig);

    /**
     * Bulk-index records first_record, first_record + 1, ... under
     * @p sigs, parallelized across bands on @p pool (band bucket
     * maps are independent, so the result is bit-identical to
     * serial add() calls in record order). Null @p pool runs
     * serially.
     */
    void addAll(std::size_t first_record,
                const std::vector<MinHashSignature> &sigs,
                ThreadPool *pool = nullptr);

    /**
     * Move @p record from the buckets of @p old_sig to those of
     * @p new_sig, leaving bands whose bucket key is unchanged
     * untouched. @p old_sig must be the signature the record is
     * currently indexed under (as passed to add()); the record keeps
     * its id, and bucket id-ordering is preserved, so a subsequent
     * candidates() behaves exactly as if the record had originally
     * been added under @p new_sig. This is the re-signing hook the
     * indexed clusterer uses when intersection shrinks a cluster's
     * fingerprint.
     */
    void update(std::size_t record, const MinHashSignature &old_sig,
                const MinHashSignature &new_sig);

    /**
     * Record ids sharing at least one band bucket with @p sig,
     * ascending and deduplicated — the shortlist the exact distance
     * kernel then scans. Primary buckets only (no multi-probe).
     */
    std::vector<std::size_t>
    candidates(const MinHashSignature &sig) const;

    /**
     * Multi-probe candidates: ids sharing any of the sketch's probe
     * buckets (lshProbeKeys) in any band, ascending and
     * deduplicated. With params().probes == 1 this equals
     * candidates(sketch.primary).
     */
    std::vector<std::size_t>
    candidates(const MinHashSketch &sketch) const;

    /** Drop all entries (for a rebuild under new parameters). */
    void clear();

    /**
     * Occupancy snapshot for diagnostics: bucket count and largest
     * bucket across all bands.
     */
    struct Occupancy
    {
        std::size_t buckets = 0;
        std::size_t largestBucket = 0;
    };
    Occupancy occupancy() const;

    /**
     * Band @p band's buckets flattened to (bucket key, record id)
     * pairs sorted by key then id — the v3 on-disk representation
     * of the index.
     */
    std::vector<std::pair<std::uint64_t, std::uint32_t>>
    bandEntries(std::uint32_t band) const;

  private:
    MinHashParams prm;
    std::size_t numRecords = 0;

    /** Per band: bucket key -> ascending record ids. */
    std::vector<std::unordered_map<std::uint64_t,
                                   std::vector<std::uint32_t>>>
        bandBuckets;
};

} // namespace pcause

#endif // PCAUSE_CORE_MINHASH_HH
