/**
 * @file
 * MinHash signatures and LSH candidate index over fingerprints.
 *
 * Algorithm 2 scans every known fingerprint per query; at the
 * "millions of users" population the roadmap targets, that linear
 * scan is the whole cost of identification. A fingerprint is a set
 * of bit positions and the Algorithm 3 distance is Jaccard-shaped,
 * so the standard sublinear tool applies: hash each fingerprint to
 * a short MinHash signature (k independent permutations of the
 * position universe), band the signature into LSH buckets, and only
 * run the exact distance kernel on records that collide with the
 * query in at least one band.
 *
 * The permutations reuse the counter-based idiom of the DRAM decay
 * engine: h_j(pos) = mix64(seed_j, pos) is a pure function of its
 * arguments, so signatures are deterministic, independent of
 * insertion or evaluation order, and cheap to compute incrementally
 * as records are added.
 */

#ifndef PCAUSE_CORE_MINHASH_HH
#define PCAUSE_CORE_MINHASH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/bitvec.hh"

namespace pcause
{

/**
 * Signature/banding tunables.
 *
 * Two signatures collide in a band when all rows of that band
 * agree, so the probability a record becomes a candidate at Jaccard
 * similarity s is 1 - (1 - s^rows)^bands. The defaults (64 hashes,
 * 32 bands of 2 rows) put the half-recall point near s = 0.18 —
 * deliberately low, because the attacker's query error string is a
 * noisy superset of the stored fingerprint and raw Jaccard
 * similarity shrinks as the approximation levels diverge. False
 * positives cost only a bounded exact-distance check apiece.
 */
struct MinHashParams
{
    /** Number of hash permutations (signature length k). */
    std::uint32_t numHashes = 64;

    /** Number of LSH bands; must divide numHashes. */
    std::uint32_t bands = 32;

    /** Base seed the per-permutation hash keys are derived from. */
    std::uint64_t seed = 0x6d696e68617368ull; // "minhash"

    /** Rows per band. */
    std::uint32_t rows() const { return numHashes / bands; }

    bool operator==(const MinHashParams &o) const
    {
        return numHashes == o.numHashes && bands == o.bands &&
               seed == o.seed;
    }
    bool operator!=(const MinHashParams &o) const { return !(*this == o); }
};

/**
 * A MinHash signature: element j is the minimum of h_j over the
 * set-bit positions. Empty sets produce all-ones sentinels (which
 * never collide with a non-empty signature except by 2^-32 chance
 * per row).
 */
using MinHashSignature = std::vector<std::uint32_t>;

/**
 * Compute the signature of @p bits under @p params. Pure function
 * of (set bits, params): the same fingerprint yields the same
 * signature regardless of when or where it is hashed.
 */
MinHashSignature minhashSignature(const BitVec &bits,
                                  const MinHashParams &params);

/**
 * Fraction of signature positions on which @p a and @p b agree —
 * an unbiased estimate of the Jaccard similarity of the underlying
 * sets. Signature lengths must match.
 */
double signatureSimilarity(const MinHashSignature &a,
                           const MinHashSignature &b);

/**
 * Banded LSH bucket index mapping signatures to record ids.
 *
 * The index is append-only (records are identified by the caller's
 * dense ids, as in FingerprintDb) and externally synchronized:
 * concurrent candidates() calls are safe against each other but not
 * against add().
 */
class LshIndex
{
  public:
    explicit LshIndex(const MinHashParams &params = {});

    /** Parameters the index was built with. */
    const MinHashParams &params() const { return prm; }

    /** Number of records indexed. */
    std::size_t size() const { return numRecords; }

    /**
     * Index @p record under @p sig. Signature length must equal
     * params().numHashes.
     */
    void add(std::size_t record, const MinHashSignature &sig);

    /**
     * Record ids sharing at least one band bucket with @p sig,
     * ascending and deduplicated — the shortlist the exact distance
     * kernel then scans.
     */
    std::vector<std::size_t>
    candidates(const MinHashSignature &sig) const;

    /** Drop all entries (for a rebuild under new parameters). */
    void clear();

    /**
     * Occupancy snapshot for diagnostics: bucket count and largest
     * bucket across all bands.
     */
    struct Occupancy
    {
        std::size_t buckets = 0;
        std::size_t largestBucket = 0;
    };
    Occupancy occupancy() const;

  private:
    /** Bucket key of band @p band of @p sig. */
    std::uint64_t bandKey(const MinHashSignature &sig,
                          std::uint32_t band) const;

    MinHashParams prm;
    std::size_t numRecords = 0;

    /** Per band: bucket key -> ascending record ids. */
    std::vector<std::unordered_map<std::uint64_t,
                                   std::vector<std::uint32_t>>>
        bandBuckets;
};

} // namespace pcause

#endif // PCAUSE_CORE_MINHASH_HH
