/**
 * @file
 * MappedStore: query a v3 database file in place, without loading.
 *
 * loadStore() deserializes every record before the first query —
 * unavoidable for the stream formats, but a million-record database
 * is ~100 MB of positions and signatures, and an attacker service
 * that restarts should not replay the whole build. The v3 layout
 * (core/pcdb_format.hh) is designed to be the query-time data
 * structure itself: MappedStore mmaps the file, validates the
 * structural metadata (header, canonical section offsets, the
 * record table) in one cheap pass, and then serves the same
 * query()/queryLinear() API as FingerprintStore straight off the
 * mapping — the kernel pages fingerprints in on first touch.
 *
 * Verdict equivalence: candidate sets are computed with the same
 * lshProbeKeys() fold the in-memory index uses (binary search over
 * the per-band sorted key arrays instead of a hash lookup), and the
 * scans run the identical sparse bounded Algorithm 3 kernel, so
 * accept/reject decisions match FingerprintStore on the same data
 * exactly.
 *
 * Trust model (same as the stream loader's signature trailer):
 * structural metadata is fully validated at open; position and
 * signature *values* are trusted, and a corrupted position panics on
 * the bounds-checked BitVec access instead of corrupting memory.
 * Unlike the stream loader, positions are not checked for ascending
 * order at open — that would touch every record page and defeat the
 * lazy mapping.
 */

#ifndef PCAUSE_CORE_MAPPED_STORE_HH
#define PCAUSE_CORE_MAPPED_STORE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/identify.hh"
#include "core/minhash.hh"
#include "core/pcdb_format.hh"
#include "core/serialize.hh"
#include "util/mmap_file.hh"

namespace pcause
{

class ThreadPool;

/** Read-only FingerprintStore over an mmap-ed v3 database file. */
class MappedStore : public SparseFingerprintSource
{
  public:
    /**
     * Map and validate @p path. Failure (missing file, wrong
     * magic/version, truncation, non-canonical layout, inconsistent
     * record table) yields an error result, never a process exit.
     */
    static LoadResult<MappedStore> open(const std::string &path);

    /** Number of records. */
    std::size_t size() const { return header.recordCount; }

    // SparseFingerprintSource
    std::size_t count() const override { return header.recordCount; }
    SparseView view(std::size_t i) const override;

    /** Label of record @p i (view into the mapping). */
    std::string_view label(std::size_t i) const;

    /** Source count of record @p i. */
    std::uint32_t sources(std::size_t i) const;

    /** MinHash signature of record @p i (copied out of the arena). */
    MinHashSignature signature(std::size_t i) const;

    /** Signature/banding parameters stored in the file. */
    const MinHashParams &indexParams() const { return prm; }

    /**
     * Use @p pool for fallback scans (null reverts to serial), as
     * FingerprintStore::setThreadPool().
     */
    void setThreadPool(ThreadPool *pool) { workers = pool; }

    /**
     * Record ids sharing any probe bucket with @p sketch in any
     * band, ascending and deduplicated — computed from the on-disk
     * sorted key arrays, identical to the in-memory
     * LshIndex::candidates() on the same records.
     */
    std::vector<std::size_t>
    candidates(const MinHashSketch &sketch) const;

    /**
     * Indexed Algorithm 2, bit-identical in verdict to
     * FingerprintStore::query() on the same records. ModifiedJaccard
     * only (the mapping holds no dense fingerprints).
     */
    IdentifyResult query(const BitVec &error_string,
                         const IdentifyParams &params = {},
                         AttackStats *stats = nullptr) const;

    /** Reference linear scan (serial sparse bounded full scan). */
    IdentifyResult queryLinear(const BitVec &error_string,
                               const IdentifyParams &params = {},
                               AttackStats *stats = nullptr) const;

  private:
    MappedStore() = default;

    /** Record-table entry @p i decoded from the mapping. */
    pcdb::V3RecordEntry entry(std::size_t i) const;

    /** First byte of band @p band's on-disk section. */
    const std::uint8_t *bandBase(std::uint32_t band) const;

    IdentifyResult queryImpl(const BitVec &error_string,
                             const IdentifyParams &params,
                             AttackStats *stats) const;

    MmapFile map;
    pcdb::V3Header header;
    MinHashParams prm;
    ThreadPool *workers = nullptr;
};

} // namespace pcause

#endif // PCAUSE_CORE_MAPPED_STORE_HH
