/**
 * @file
 * Online clustering of approximate outputs (paper Algorithm 4).
 *
 * For the eavesdropping attacker, who has not pre-characterized any
 * chip: each incoming error string is compared to the fingerprints
 * of existing clusters; a hit augments that cluster's fingerprint
 * by intersection, a miss opens a new cluster. The cluster set *is*
 * the discovered fingerprint database.
 */

#ifndef PCAUSE_CORE_CLUSTER_HH
#define PCAUSE_CORE_CLUSTER_HH

#include <vector>

#include "core/distance.hh"
#include "core/fingerprint.hh"
#include "core/identify.hh"
#include "util/bitvec.hh"

namespace pcause
{

/** Tunables for clustering. */
struct ClusterParams
{
    double threshold = 0.1;  //!< same scale as identification
    DistanceMetric metric = DistanceMetric::ModifiedJaccard;
};

/** Incremental Algorithm 4 state. */
class OnlineClusterer
{
  public:
    explicit OnlineClusterer(const ClusterParams &params = {});

    /**
     * Assign one error string to a cluster, creating a new cluster
     * when nothing matches. Returns the cluster index.
     */
    std::size_t addErrorString(const BitVec &error_string);

    /** Convenience: derive the error string, then add it. */
    std::size_t add(const BitVec &approx, const BitVec &exact);

    /** Number of clusters discovered so far. */
    std::size_t numClusters() const { return clusters.size(); }

    /** Fingerprint of cluster @p i. */
    const Fingerprint &fingerprint(std::size_t i) const;

    /** Cluster index assigned to each added error string, in order. */
    const std::vector<std::size_t> &assignments() const
    {
        return history;
    }

    /** Export the clusters as an identification database. */
    FingerprintDb toDatabase(const std::string &label_prefix =
                             "cluster-") const;

  private:
    ClusterParams prm;
    std::vector<Fingerprint> clusters;
    std::vector<std::size_t> history;
};

/**
 * Batch Algorithm 4 (CLUSTER): cluster @p approx_results sharing
 * one exact value and return the discovered fingerprint database.
 * @p assignments_out, when non-null, receives per-result cluster
 * indices.
 */
FingerprintDb cluster(const std::vector<BitVec> &approx_results,
                      const BitVec &exact,
                      const ClusterParams &params = {},
                      std::vector<std::size_t> *assignments_out =
                      nullptr);

} // namespace pcause

#endif // PCAUSE_CORE_CLUSTER_HH
