/**
 * @file
 * Online clustering of approximate outputs (paper Algorithm 4).
 *
 * For the eavesdropping attacker, who has not pre-characterized any
 * chip: each incoming error string is compared to the fingerprints
 * of existing clusters; a hit augments that cluster's fingerprint
 * by intersection, a miss opens a new cluster. The cluster set *is*
 * the discovered fingerprint database.
 *
 * Two implementations share the algorithm: OnlineClusterer is the
 * literal pairwise scan (the reference), and IndexedClusterer keeps
 * cluster fingerprints in the same MinHash/LSH banded bucket index
 * FingerprintStore uses for Algorithm 2 — bucket shortlist, exact
 * bounded-kernel confirm, full-scan fallback — so ingest stays
 * sublinear at fleet scale while accept/reject verdicts are
 * identical to the pairwise scan by construction.
 */

#ifndef PCAUSE_CORE_CLUSTER_HH
#define PCAUSE_CORE_CLUSTER_HH

#include <cstdint>
#include <vector>

#include "core/distance.hh"
#include "core/fingerprint.hh"
#include "core/identify.hh"
#include "core/minhash.hh"
#include "util/bitvec.hh"

namespace pcause
{

class ThreadPool;

/** Tunables for clustering. */
struct ClusterParams
{
    double threshold = 0.1;  //!< same scale as identification
    DistanceMetric metric = DistanceMetric::ModifiedJaccard;
};

/** Incremental Algorithm 4 state. */
class OnlineClusterer
{
  public:
    explicit OnlineClusterer(const ClusterParams &params = {});

    /**
     * Assign one error string to a cluster, creating a new cluster
     * when nothing matches. Returns the cluster index.
     */
    std::size_t addErrorString(const BitVec &error_string);

    /** Convenience: derive the error string, then add it. */
    std::size_t add(const BitVec &approx, const BitVec &exact);

    /** Number of clusters discovered so far. */
    std::size_t numClusters() const { return clusters.size(); }

    /** Fingerprint of cluster @p i. */
    const Fingerprint &fingerprint(std::size_t i) const;

    /** Cluster index assigned to each added error string, in order. */
    const std::vector<std::size_t> &assignments() const
    {
        return history;
    }

    /** Export the clusters as an identification database. */
    FingerprintDb toDatabase(const std::string &label_prefix =
                             "cluster-") const;

  private:
    ClusterParams prm;
    std::vector<Fingerprint> clusters;
    std::vector<std::size_t> history;
};

/** Ingest counters of an IndexedClusterer session. */
struct ClusterStats
{
    std::uint64_t outputs = 0;          //!< error strings ingested
    std::uint64_t clustersOpened = 0;   //!< misses that opened clusters
    std::uint64_t augments = 0;         //!< hits folded by intersection
    std::uint64_t resigns = 0;          //!< augments that moved buckets
    std::uint64_t candidatesScanned = 0; //!< shortlist confirms run
    std::uint64_t fallbackScans = 0;    //!< full-scan fallbacks taken
};

/**
 * Algorithm 4 on the MinHash/LSH candidate index.
 *
 * Each incoming error string is signed once; the banded bucket
 * index shortlists clusters sharing a primary band bucket with it,
 * and the exact bounded Algorithm 3 kernel confirms the shortlist in
 * ascending cluster-id order (creation order — the order the
 * pairwise scan visits). Unlike FingerprintStore's query side, the
 * clusterer probes primary buckets only (no multi-probe): in the
 * clustering regime an output and its cluster's fingerprint are
 * near-duplicates, so a primary all-band miss is already rare, the
 * bounded fallback makes any miss harmless to the verdict, and
 * skipping the second-minima sketch roughly halves the per-output
 * signing + probing cost. When no shortlisted cluster accepts, a bounded full scan
 * over all clusters decides, and its verdict is returned verbatim —
 * so whether an output joins an existing cluster or opens a new one
 * is always identical to OnlineClusterer, and *which* cluster it
 * joins is identical whenever at most one cluster sits under the
 * threshold (the regime the paper's separated fleets are in; see
 * docs/ALGORITHMS.md).
 *
 * Re-signing rule: augment() intersects, so a cluster's fingerprint
 * bits only ever shrink; its weight is unchanged iff its bits are
 * unchanged. On every augment that changed the weight the cluster's
 * signature is brought up to date incrementally (minhashReSign via
 * the stored witness positions — only permutations whose witness bit
 * was removed are re-hashed) and the index entry moved
 * (LshIndex::update) when any signature value actually changed, so
 * the index always reflects the current fingerprints at O(removed
 * bits) amortized cost instead of a full re-hash per shrink.
 *
 * Externally synchronized, like FingerprintStore: concurrent calls
 * on one instance are not supported. addBatch() parallelizes only
 * the pure per-output sketching across the attached pool; ingest
 * stays strictly sequential, so assignments equal serial
 * addErrorString() calls in order.
 */
class IndexedClusterer
{
  public:
    explicit IndexedClusterer(const ClusterParams &params = {},
                              const MinHashParams &index_params = {});

    /**
     * Use @p pool (not owned, may be null to go serial) for
     * addBatch()'s sketching phase.
     */
    void setThreadPool(ThreadPool *pool) { workers = pool; }

    /**
     * Assign one error string to a cluster, creating a new cluster
     * when nothing matches. Returns the cluster index.
     */
    std::size_t addErrorString(const BitVec &error_string);

    /** Convenience: derive the error string, then add it. */
    std::size_t add(const BitVec &approx, const BitVec &exact);

    /**
     * Streaming batch ingest: equivalent to addErrorString() on each
     * element in order (sketches precompute in parallel; the
     * index/fingerprint fold is sequential). Returns the cluster
     * index per error string. Sketching here means signing only —
     * see the class comment on primary-bucket probing.
     */
    std::vector<std::size_t>
    addBatch(const std::vector<BitVec> &error_strings);

    /** Number of clusters discovered so far. */
    std::size_t numClusters() const { return clusters.size(); }

    /** Fingerprint of cluster @p i. */
    const Fingerprint &fingerprint(std::size_t i) const;

    /** Current signature of cluster @p i (re-signed on shrink). */
    const MinHashSignature &signature(std::size_t i) const;

    /** Cluster index assigned to each added error string, in order. */
    const std::vector<std::size_t> &assignments() const
    {
        return history;
    }

    /** Export the clusters as an identification database. */
    FingerprintDb toDatabase(const std::string &label_prefix =
                             "cluster-") const;

    /** Index parameters the cluster signatures are banded under. */
    const MinHashParams &indexParams() const { return lsh.params(); }

    /** Session counters. */
    const ClusterStats &stats() const { return counters; }

  private:
    /** Ingest one error string whose signature is already computed. */
    std::size_t ingest(const BitVec &error_string,
                       const MinHashSignature &sig);

    /** Bounded confirm of @p error_string against cluster @p c. */
    double confirm(const BitVec &error_string, std::size_t es_weight,
                   std::size_t c) const;

    /** Fold an accepted error string into cluster @p c, re-signing
     *  when the intersection shrank the fingerprint. */
    std::size_t augmentInto(std::size_t c, const BitVec &error_string);

    ClusterParams prm;
    std::vector<Fingerprint> clusters;
    std::vector<MinHashSignature> sigs; //!< current, per cluster
    std::vector<MinHashWitness> wits;   //!< witness positions of sigs
    LshIndex lsh;
    std::vector<std::size_t> history;
    ThreadPool *workers = nullptr;
    ClusterStats counters;
};

/**
 * Batch Algorithm 4 (CLUSTER): cluster @p approx_results sharing
 * one exact value and return the discovered fingerprint database.
 * @p assignments_out, when non-null, receives per-result cluster
 * indices.
 */
FingerprintDb cluster(const std::vector<BitVec> &approx_results,
                      const BitVec &exact,
                      const ClusterParams &params = {},
                      std::vector<std::size_t> *assignments_out =
                      nullptr);

/**
 * cluster() through an IndexedClusterer: same contract and (in the
 * separated-fleet regime) same assignments, sublinear in the number
 * of clusters. @p pool, when non-null, parallelizes the error-string
 * and sketch precomputation.
 */
FingerprintDb clusterIndexed(const std::vector<BitVec> &approx_results,
                             const BitVec &exact,
                             const ClusterParams &params = {},
                             const MinHashParams &index_params = {},
                             std::vector<std::size_t> *assignments_out =
                             nullptr,
                             ThreadPool *pool = nullptr);

} // namespace pcause

#endif // PCAUSE_CORE_CLUSTER_HH
