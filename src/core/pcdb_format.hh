/**
 * @file
 * PCDB v3 on-disk layout, shared by the stream serializer
 * (core/serialize) and the mmap-backed reader (core/mapped_store).
 *
 * v3 is designed to be queried in place: after a fixed-size header
 * with explicit section offsets comes a fixed-stride record table,
 * then contiguous arenas (signatures, fingerprint positions,
 * labels) and the LSH index serialized as per-band sorted
 * (bucket key, record id) arrays. Opening a million-record database
 * is a header check plus one pass over the 40 MB record table —
 * milliseconds — and record payloads are paged in by the kernel on
 * first touch.
 *
 * All integers are little-endian (the library already writes v1/v2
 * scalars in native little-endian). Every section starts 8-byte
 * aligned, and the layout is *canonical*: section offsets and
 * per-record arena offsets must be exactly the packed sequential
 * values a writer produces. Readers reject anything else, which
 * makes "every strict prefix of a valid file fails to load" cheap
 * to guarantee for the mmap reader too (the header's fileSize must
 * equal both the mapped length and the computed section end).
 *
 * Layout:
 *
 *   header (104 bytes)
 *     off  0  char[4]  magic "PCDB"
 *     off  4  u32      version = 3
 *     off  8  u32      minhash numHashes (k)
 *     off 12  u32      minhash bands
 *     off 16  u32      minhash probes
 *     off 20  u32      reserved (0)
 *     off 24  u64      minhash seed
 *     off 32  u64      record count N
 *     off 40  u64      total fingerprint positions P
 *     off 48  u64      label arena bytes L
 *     off 56  u64      file size in bytes
 *     off 64  u64      record table offset   (= 104)
 *     off 72  u64      signature arena offset
 *     off 80  u64      position arena offset
 *     off 88  u64      label arena offset
 *     off 96  u64      LSH section offset
 *
 *   record table: N entries of 40 bytes
 *     off  0  u64      label offset into label arena
 *     off  8  u64      position offset into position arena (elements)
 *     off 16  u64      fingerprint universe (bits)
 *     off 24  u32      label length (bytes)
 *     off 28  u32      position count
 *     off 32  u32      source count (> 0)
 *     off 36  u32      reserved (0)
 *
 *   signature arena: N * k u32 (record-major), zero-padded to 8
 *   position arena:  P u32 (ascending within each record), padded
 *   label arena:     L raw bytes, padded
 *   LSH section:     per band b in [0, bands):
 *     u64 entry count (= N), u64 keys[N] (sorted, ties by id),
 *     u32 ids[N] (parallel to keys), zero-padded to 8
 *
 * Structural metadata (offsets, counts, sizes) is fully validated
 * by both readers. Arena payloads — positions and signature values
 * — are trusted the same way v2 trusted its signature trailer: a
 * corrupted position panics on the bounds-checked BitVec access
 * instead of corrupting memory.
 */

#ifndef PCAUSE_CORE_PCDB_FORMAT_HH
#define PCAUSE_CORE_PCDB_FORMAT_HH

#include <cstdint>
#include <cstring>

namespace pcause
{
namespace pcdb
{

constexpr char magic[4] = {'P', 'C', 'D', 'B'};
constexpr std::uint32_t versionV1 = 1;
constexpr std::uint32_t versionV2 = 2;
constexpr std::uint32_t versionV3 = 3;

constexpr std::uint64_t v3HeaderBytes = 104;
constexpr std::uint64_t v3RecordEntryBytes = 40;

/** Round @p x up to the next multiple of 8. */
constexpr std::uint64_t
align8(std::uint64_t x)
{
    return (x + 7) & ~std::uint64_t{7};
}

/** Decoded v3 header. */
struct V3Header
{
    std::uint32_t numHashes = 0;
    std::uint32_t bands = 0;
    std::uint32_t probes = 0;
    std::uint64_t seed = 0;
    std::uint64_t recordCount = 0;
    std::uint64_t totalPositions = 0;
    std::uint64_t labelBytes = 0;
    std::uint64_t fileSize = 0;
    std::uint64_t recordTableOff = 0;
    std::uint64_t sigOff = 0;
    std::uint64_t posOff = 0;
    std::uint64_t labelOff = 0;
    std::uint64_t lshOff = 0;
};

/** One decoded record-table entry. */
struct V3RecordEntry
{
    std::uint64_t labelOff = 0;
    std::uint64_t posOff = 0;
    std::uint64_t universe = 0;
    std::uint32_t labelLen = 0;
    std::uint32_t posCount = 0;
    std::uint32_t sources = 0;
    std::uint32_t reserved = 0;
};

/** Unaligned little-endian loads (mmap-ed data has no alignment
 *  guarantees a struct cast could rely on). */
inline std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Per-band LSH section size for @p records records. */
constexpr std::uint64_t
v3BandBytes(std::uint64_t records)
{
    return 8 + align8(records * 8 + records * 4);
}

/**
 * The canonical section offsets and total size for a v3 file of
 * @p records records, @p k hashes, @p total_positions positions and
 * @p label_bytes of labels. Readers reject files whose header
 * offsets differ.
 */
struct V3Layout
{
    std::uint64_t recordTableOff = 0;
    std::uint64_t sigOff = 0;
    std::uint64_t posOff = 0;
    std::uint64_t labelOff = 0;
    std::uint64_t lshOff = 0;
    std::uint64_t fileSize = 0;
};

inline V3Layout
v3Layout(std::uint64_t records, std::uint64_t k,
         std::uint64_t total_positions, std::uint64_t label_bytes,
         std::uint64_t bands)
{
    V3Layout l;
    l.recordTableOff = v3HeaderBytes;
    l.sigOff =
        align8(l.recordTableOff + records * v3RecordEntryBytes);
    l.posOff = align8(l.sigOff + records * k * 4);
    l.labelOff = align8(l.posOff + total_positions * 4);
    l.lshOff = align8(l.labelOff + label_bytes);
    l.fileSize = l.lshOff + bands * v3BandBytes(records);
    return l;
}

} // namespace pcdb
} // namespace pcause

#endif // PCAUSE_CORE_PCDB_FORMAT_HH
