/**
 * @file
 * Output-to-chip identification (paper Algorithm 2).
 *
 * Given a database of known fingerprints, identify which chip
 * produced an approximate output by comparing its error string
 * against each fingerprint with the Algorithm 3 distance and a
 * calibrated threshold. Includes the threshold-calibration helper
 * the paper alludes to ("Section 7 discusses how we experimentally
 * determine this threshold").
 */

#ifndef PCAUSE_CORE_IDENTIFY_HH
#define PCAUSE_CORE_IDENTIFY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/distance.hh"
#include "core/fingerprint.hh"
#include "dram/dram_config.hh"
#include "util/bitvec.hh"

namespace pcause
{

/** Identity attached to a fingerprint in the database. */
using ChipLabel = std::string;

/** One database entry. */
struct FingerprintRecord
{
    ChipLabel label;
    Fingerprint fingerprint;
};

/** Attacker-side store of known system-level fingerprints. */
class FingerprintDb
{
  public:
    /** Add a record; returns its index. */
    std::size_t add(ChipLabel label, Fingerprint fp);

    /** Number of records. */
    std::size_t size() const { return records.size(); }

    /** Record @p i. */
    const FingerprintRecord &record(std::size_t i) const;

    /** Mutable record @p i (for online augmentation). */
    FingerprintRecord &record(std::size_t i);

  private:
    std::vector<FingerprintRecord> records;
};

/** Outcome of one identification. */
struct IdentifyResult
{
    /** Matched record index; nullopt when no distance beat the
     *  threshold (Algorithm 2's "failed"). */
    std::optional<std::size_t> match;

    /** Distance to the matched (or nearest) fingerprint. */
    double bestDistance = 1.0;

    /** Index of the nearest fingerprint even on failure. */
    std::optional<std::size_t> nearest;
};

/** Tunables for identification. */
struct IdentifyParams
{
    /** Match threshold on the Algorithm 3 distance. The paper's
     *  within-class distances sit below ~1e-3 and between-class
     *  above ~0.75; 0.1 splits them with two decades of margin. */
    double threshold = 0.1;

    /** Distance metric (ablation knob; the paper uses
     *  ModifiedJaccard). */
    DistanceMetric metric = DistanceMetric::ModifiedJaccard;

    /**
     * When true, return the first record under threshold (the
     * paper's literal Algorithm 2); when false, return the best
     * record under threshold (a stricter variant used to measure
     * how close the second-best match comes).
     */
    bool firstMatch = true;
};

/**
 * Algorithm 2 (IDENTIFY): attribute an approximate output to a
 * known chip.
 *
 * @param approx  the approximate output
 * @param exact   its exact counterpart
 * @param db      known system-level fingerprints
 * @param params  threshold and metric
 */
IdentifyResult identify(const BitVec &approx, const BitVec &exact,
                        const FingerprintDb &db,
                        const IdentifyParams &params = {});

/** Identify from a precomputed error string. */
IdentifyResult identifyErrorString(const BitVec &error_string,
                                   const FingerprintDb &db,
                                   const IdentifyParams &params = {});

/**
 * Data-aware identification: with real (non-worst-case) data only
 * cells written opposite their default value can decay, so a plain
 * comparison under-counts fingerprint hits. This variant masks
 * every database fingerprint down to the cells the published data
 * actually charged (the attacker knows the exact data — they
 * recomputed it for the error string) before measuring distance.
 *
 * @param approx  the approximate output
 * @param exact   its exact counterpart
 * @param config  device layout determining default values
 * @param db      known system-level fingerprints
 * @param params  threshold and metric
 */
IdentifyResult identifyWithData(const BitVec &approx,
                                const BitVec &exact,
                                const DramConfig &config,
                                const FingerprintDb &db,
                                const IdentifyParams &params = {});

/**
 * Experimentally calibrate the identification threshold from
 * labeled distances: place it at the geometric midpoint between the
 * largest within-class and smallest between-class distance.
 * Fatal when the classes overlap (no threshold can separate them).
 */
double calibrateThreshold(const std::vector<double> &within_class,
                          const std::vector<double> &between_class);

} // namespace pcause

#endif // PCAUSE_CORE_IDENTIFY_HH
