/**
 * @file
 * Output-to-chip identification (paper Algorithm 2).
 *
 * Given a database of known fingerprints, identify which chip
 * produced an approximate output by comparing its error string
 * against each fingerprint with the Algorithm 3 distance and a
 * calibrated threshold. Includes the threshold-calibration helper
 * the paper alludes to ("Section 7 discusses how we experimentally
 * determine this threshold").
 */

#ifndef PCAUSE_CORE_IDENTIFY_HH
#define PCAUSE_CORE_IDENTIFY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/attack_stats.hh"
#include "core/distance.hh"
#include "core/fingerprint.hh"
#include "dram/dram_config.hh"
#include "util/bitvec.hh"

/**
 * The raw scan entry points below are superseded by the
 * AttackService facade (core/service.hh): one QueryOptions-driven
 * identify() covers the indexed, linear, sparse, and batch paths.
 * They stay available — the store's query kernels and the
 * differential-test oracles are built on them — but new callers
 * outside src/core should go through AttackService. TUs that *are*
 * the implementation (or deliberately diff against the raw kernels)
 * define PCAUSE_ALLOW_DEPRECATED_IDENTIFY before their first
 * include to opt out of the warning.
 */
#if defined(PCAUSE_ALLOW_DEPRECATED_IDENTIFY)
#define PCAUSE_DEPRECATED_IDENTIFY(msg)
#else
#define PCAUSE_DEPRECATED_IDENTIFY(msg) [[deprecated(msg)]]
#endif

namespace pcause
{

class ThreadPool;

/** Identity attached to a fingerprint in the database. */
using ChipLabel = std::string;

/** One database entry. */
struct FingerprintRecord
{
    ChipLabel label;
    Fingerprint fingerprint;
};

/** Attacker-side store of known system-level fingerprints. */
class FingerprintDb
{
  public:
    /** Add a record; returns its index. */
    std::size_t add(ChipLabel label, Fingerprint fp);

    /** Number of records. */
    std::size_t size() const { return records.size(); }

    /** Record @p i. */
    const FingerprintRecord &record(std::size_t i) const;

    /** Mutable record @p i (for online augmentation). */
    FingerprintRecord &record(std::size_t i);

  private:
    std::vector<FingerprintRecord> records;
};

/** Outcome of one identification. */
struct IdentifyResult
{
    /** Matched record index; nullopt when no distance beat the
     *  threshold (Algorithm 2's "failed"). */
    std::optional<std::size_t> match;

    /** Distance to the matched (or nearest) fingerprint. */
    double bestDistance = 1.0;

    /** Index of the nearest fingerprint even on failure. */
    std::optional<std::size_t> nearest;
};

/** Tunables for identification. */
struct IdentifyParams
{
    /** Match threshold on the Algorithm 3 distance. The paper's
     *  within-class distances sit below ~1e-3 and between-class
     *  above ~0.75; 0.1 splits them with two decades of margin. */
    double threshold = 0.1;

    /** Distance metric (ablation knob; the paper uses
     *  ModifiedJaccard). */
    DistanceMetric metric = DistanceMetric::ModifiedJaccard;

    /**
     * When true, return the first record under threshold (the
     * paper's literal Algorithm 2); when false, return the best
     * record under threshold (a stricter variant used to measure
     * how close the second-best match comes).
     */
    bool firstMatch = true;
};

/**
 * Algorithm 2 (IDENTIFY): attribute an approximate output to a
 * known chip.
 *
 * @param approx  the approximate output
 * @param exact   its exact counterpart
 * @param db      known system-level fingerprints
 * @param params  threshold and metric
 */
IdentifyResult identify(const BitVec &approx, const BitVec &exact,
                        const FingerprintDb &db,
                        const IdentifyParams &params = {});

/** Identify from a precomputed error string. */
IdentifyResult identifyErrorString(const BitVec &error_string,
                                   const FingerprintDb &db,
                                   const IdentifyParams &params = {});

/**
 * Data-aware identification: with real (non-worst-case) data only
 * cells written opposite their default value can decay, so a plain
 * comparison under-counts fingerprint hits. This variant masks
 * every database fingerprint down to the cells the published data
 * actually charged (the attacker knows the exact data — they
 * recomputed it for the error string) before measuring distance.
 *
 * @param approx  the approximate output
 * @param exact   its exact counterpart
 * @param config  device layout determining default values
 * @param db      known system-level fingerprints
 * @param params  threshold and metric
 */
IdentifyResult identifyWithData(const BitVec &approx,
                                const BitVec &exact,
                                const DramConfig &config,
                                const FingerprintDb &db,
                                const IdentifyParams &params = {});

/**
 * Single-query parallel scan: Algorithm 2 with the FingerprintDb
 * partitioned into contiguous shards across @p pool's threads. Each
 * shard runs the bounded Algorithm 3 kernel (early exit at
 * max(threshold, shard-local best distance), which provably cannot
 * change any verdict — see docs/ALGORITHMS.md), and in first-match
 * mode shards beyond an already-found match abort early. The result
 * is bit-identical to serial identify() for both firstMatch
 * settings. @p stats, when non-null, accumulates kernel counters.
 */
PCAUSE_DEPRECATED_IDENTIFY(
    "superseded by AttackService (core/service.hh)")
IdentifyResult
identifyErrorStringParallel(const BitVec &error_string,
                            const FingerprintDb &db,
                            const IdentifyParams &params,
                            ThreadPool &pool,
                            AttackStats *stats = nullptr);

/**
 * Exact bounded Algorithm 3 scan restricted to an explicit record
 * shortlist, visited in the order given. Verdicts are what a serial
 * identifyErrorString() would produce if the database held only the
 * listed records (in that order): the candidate-index query path is
 * built on this. @p stats, when non-null, accumulates kernel
 * counters.
 */
PCAUSE_DEPRECATED_IDENTIFY(
    "superseded by AttackService (core/service.hh)")
IdentifyResult identifyAmong(const BitVec &error_string,
                             const FingerprintDb &db,
                             const std::vector<std::size_t> &candidates,
                             const IdentifyParams &params = {},
                             AttackStats *stats = nullptr);

/**
 * identifyAmong() with the error string's popcount precomputed, the
 * way identifySparseAmong() takes it: batch callers (the store's
 * dense query path) hash the query operand once per query instead
 * of once per shortlisted candidate. @p es_weight must equal
 * error_string.popcount().
 */
PCAUSE_DEPRECATED_IDENTIFY(
    "superseded by AttackService (core/service.hh)")
IdentifyResult identifyAmong(const BitVec &error_string,
                             std::size_t es_weight,
                             const FingerprintDb &db,
                             const std::vector<std::size_t> &candidates,
                             const IdentifyParams &params = {},
                             AttackStats *stats = nullptr);

/**
 * Serial full scan through the bounded Algorithm 3 kernel:
 * bit-identical verdicts and distances to identifyErrorString(),
 * with the early-exit pruning (and counter reporting) of the
 * parallel scan but no thread pool.
 */
PCAUSE_DEPRECATED_IDENTIFY(
    "superseded by AttackService (core/service.hh)")
IdentifyResult
identifyErrorStringBounded(const BitVec &error_string,
                           const FingerprintDb &db,
                           const IdentifyParams &params = {},
                           AttackStats *stats = nullptr);

/**
 * identifyAmong() against sparse fingerprints: the same shortlist
 * scan through the sparse bounded Algorithm 3 kernel, which is
 * bit-identical to the dense one (see modifiedJaccardSparseBounded),
 * so verdicts cannot differ from the dense path. ModifiedJaccard
 * metric only. @p es_weight must equal error_string.popcount() —
 * callers hash it once per query. Performs no timing of its own;
 * callers stamp wall time.
 */
PCAUSE_DEPRECATED_IDENTIFY(
    "superseded by AttackService (core/service.hh)")
IdentifyResult
identifySparseAmong(const BitVec &error_string, std::size_t es_weight,
                    const SparseFingerprintSource &fps,
                    const std::vector<std::size_t> &candidates,
                    const IdentifyParams &params = {},
                    AttackStats *stats = nullptr);

/**
 * identifyErrorStringBounded() against sparse fingerprints
 * (ModifiedJaccard only, untimed — see identifySparseAmong()).
 */
PCAUSE_DEPRECATED_IDENTIFY(
    "superseded by AttackService (core/service.hh)")
IdentifyResult
identifySparseBounded(const BitVec &error_string,
                      std::size_t es_weight,
                      const SparseFingerprintSource &fps,
                      const IdentifyParams &params = {},
                      AttackStats *stats = nullptr);

/**
 * identifyErrorStringParallel() against sparse fingerprints
 * (ModifiedJaccard only, untimed — see identifySparseAmong()):
 * the database sharded across @p pool with the same
 * earliest-match protocol, bit-identical to the serial sparse scan.
 */
PCAUSE_DEPRECATED_IDENTIFY(
    "superseded by AttackService (core/service.hh)")
IdentifyResult
identifySparseParallel(const BitVec &error_string,
                       std::size_t es_weight,
                       const SparseFingerprintSource &fps,
                       const IdentifyParams &params, ThreadPool &pool,
                       AttackStats *stats = nullptr);

/**
 * Batch identification of many error strings against one database.
 * Queries are independent, so they are spread across the pool
 * (falling back to a per-query database-sharded scan when there are
 * fewer queries than threads); every element of the result is
 * bit-identical to a serial identifyErrorString() call. Passing a
 * null @p pool uses ThreadPool::global().
 */
PCAUSE_DEPRECATED_IDENTIFY(
    "superseded by AttackService (core/service.hh)")
std::vector<IdentifyResult>
identifyErrorStringBatch(const std::vector<BitVec> &error_strings,
                         const FingerprintDb &db,
                         const IdentifyParams &params = {},
                         ThreadPool *pool = nullptr,
                         AttackStats *stats = nullptr);

/**
 * Batch Algorithm 2 from raw outputs: extracts every error string
 * (in parallel), then runs identifyErrorStringBatch().
 * @p approx_outputs and @p exact_values pair up elementwise.
 */
PCAUSE_DEPRECATED_IDENTIFY(
    "superseded by AttackService (core/service.hh)")
std::vector<IdentifyResult>
identifyBatch(const std::vector<BitVec> &approx_outputs,
              const std::vector<BitVec> &exact_values,
              const FingerprintDb &db,
              const IdentifyParams &params = {},
              ThreadPool *pool = nullptr,
              AttackStats *stats = nullptr);

/**
 * Experimentally calibrate the identification threshold from
 * labeled distances: place it at the geometric midpoint between the
 * largest within-class and smallest between-class distance.
 *
 * When the classes overlap (no threshold separates them cleanly —
 * e.g. under a strong noise defense), no fatal error is raised:
 * a warning is logged and the threshold minimizing the number of
 * misclassified pooled samples (missed within-class matches plus
 * spurious between-class matches) is returned, so downstream
 * evaluation degrades gracefully instead of dying.
 */
double calibrateThreshold(const std::vector<double> &within_class,
                          const std::vector<double> &between_class);

} // namespace pcause

#endif // PCAUSE_CORE_IDENTIFY_HH
