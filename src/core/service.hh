/**
 * @file
 * AttackService: one identification API for every frontend.
 *
 * Identification grew several entry points as it got faster — the
 * raw Algorithm 2 scans in core/identify, the indexed
 * FingerprintStore::query* family, and the mmap-ed MappedStore
 * twins — and every frontend (CLI, benches, attackers, and now the
 * pcaused network server) re-picked a combination by hand.
 * AttackService is the facade that ends that proliferation: it owns
 * one backend (an in-memory FingerprintStore or a read-only
 * MappedStore over a v3 file), exposes a single QueryOptions-driven
 * identify entry point plus the batch variant the micro-batcher
 * feeds, and resolves record indices to labels so callers never
 * reach into the backend for presentation.
 *
 * Verdicts are bit-identical to direct FingerprintStore /
 * MappedStore queries by construction: the facade adds locking,
 * label resolution, and stats accounting around the store calls and
 * changes nothing about the query path itself.
 *
 * Concurrency: identify paths take a shared lock, mutations
 * (addRecord / addFingerprint) take the exclusive lock, so a
 * long-running server can characterize new chips while queries are
 * in flight. Counters accumulate into per-worker ServiceStats slots
 * and merge via AttackStats::operator+= only at snapshot time, so a
 * stats read never tears or double-counts under load.
 */

#ifndef PCAUSE_CORE_SERVICE_HH
#define PCAUSE_CORE_SERVICE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/attack_stats.hh"
#include "core/identify.hh"
#include "core/mapped_store.hh"
#include "core/serialize.hh"
#include "core/store.hh"
#include "core/wal.hh"

namespace pcause
{

class ThreadPool;

/**
 * The one set of identification knobs shared by the CLI, the wire
 * protocol, and the batch APIs. Maps 1:1 onto IdentifyParams plus
 * the linear/indexed backend choice that used to be a separate
 * function name.
 */
struct QueryOptions
{
    /** Match threshold on the Algorithm 3 distance. */
    double threshold = 0.1;

    /** Distance metric (the paper uses ModifiedJaccard). */
    DistanceMetric metric = DistanceMetric::ModifiedJaccard;

    /** First record under threshold (the paper's literal Algorithm
     *  2) vs the best record under threshold. */
    bool firstMatch = true;

    /** Bypass the candidate index and run the reference linear
     *  scan (verdicts are equal either way; this is the
     *  measurement/debugging knob, not a correctness one). */
    bool linear = false;

    /** The IdentifyParams this option set denotes. */
    IdentifyParams identifyParams() const
    {
        IdentifyParams p;
        p.threshold = threshold;
        p.metric = metric;
        p.firstMatch = firstMatch;
        return p;
    }

    bool operator==(const QueryOptions &o) const
    {
        return threshold == o.threshold && metric == o.metric &&
               firstMatch == o.firstMatch && linear == o.linear;
    }
    bool operator!=(const QueryOptions &o) const { return !(*this == o); }
};

/** One identification request: an error string plus its options.
 *  The same struct travels the wire, the CLI, and the batcher. */
struct IdentifyRequest
{
    BitVec errorString;
    QueryOptions options;
};

/**
 * One identification outcome with labels resolved and the stats
 * delta this query contributed — the unified reply shape for the
 * CLI, the wire protocol, and batch callers (no more ad-hoc
 * (result, label, stats) tuples at every call site).
 */
struct IdentifyVerdict
{
    /** True when a record beat the threshold. */
    bool matched = false;

    /** Label of the matched record; empty when no match. */
    std::string label;

    /** Distance to the matched (or nearest) fingerprint. */
    double distance = 1.0;

    /** Matched record index (diagnostics; labels are resolved). */
    std::optional<std::size_t> record;

    /** Nearest record index, even on failure. */
    std::optional<std::size_t> nearest;

    /** Label of the nearest record; empty when the database is. */
    std::string nearestLabel;

    /** Counters this query added (candidates scanned, fallbacks,
     *  kernel counts, wall time). */
    AttackStats delta;
};

/** Database diagnostics, backend-independent. */
struct ServiceDbStats
{
    std::size_t records = 0;
    std::size_t universeBits = 0;
    std::size_t volatileCells = 0;
    std::size_t diskBytesEstimate = 0;
    MinHashParams indexParams;

    /** In-memory LSH occupancy; meaningful only when hasOccupancy
     *  (the mmap-ed backend keeps its index on disk). */
    bool hasOccupancy = false;
    std::size_t lshBuckets = 0;
    std::size_t largestBucket = 0;

    /** "store" (in-memory) or "mmap" (v3 file queried in place). */
    const char *backend = "store";
};

/**
 * Per-worker AttackStats accumulation (cache-line-padded slots,
 * one light mutex each). Workers add deltas to a slot picked by a
 * stable per-thread id; snapshot() locks each slot briefly and
 * merges with AttackStats::operator+=, so concurrent readers see a
 * sum in which every delta appears exactly once and no counter is
 * ever torn mid-update.
 */
class ServiceStats
{
  public:
    explicit ServiceStats(std::size_t num_slots = 16);

    /** Fold @p delta into this thread's slot. */
    void accumulate(const AttackStats &delta) const;

    /** Merged view of all slots (operator+= over a brief per-slot
     *  lock; never torn, never double-counted). */
    AttackStats snapshot() const;

  private:
    struct alignas(64) Slot
    {
        /** Measurements, not service state: const paths update
         *  them under the slot mutex (the collectVotes idiom). */
        mutable std::mutex m;
        mutable AttackStats s;
    };

    std::size_t slotCount;
    std::unique_ptr<Slot[]> slots;
};

/** The unified identification facade (see file comment). */
class AttackService
{
  public:
    /** Serve an in-memory (mutable) store. */
    explicit AttackService(FingerprintStore store);

    /** Serve a read-only mmap-ed v3 database in place. */
    explicit AttackService(MappedStore store);

    AttackService(AttackService &&) = default;
    AttackService &operator=(AttackService &&) = default;

    /**
     * Load a service from a database file: @p mmap queries the v3
     * file in place (read-only), otherwise the store is
     * deserialized into memory. Malformed input yields an error
     * result, never a process exit.
     */
    static LoadResult<AttackService> open(const std::string &path,
                                          bool mmap = false);

    /** How a durable service persists (openDurable). */
    struct DurabilityConfig
    {
        /** v3 snapshot path (loaded on open, rewritten by
         *  checkpoints via saveStoreDurable). */
        std::string dbPath;

        /** Write-ahead journal path (core/wal). */
        std::string walPath;

        /** Start with an empty store when @p dbPath does not exist
         *  yet; false turns a missing snapshot into an error. */
        bool createIfMissing = true;

        /** Compact the journal into a fresh snapshot once it holds
         *  this many entries (0 = only on demand / shutdown). */
        std::size_t checkpointEvery = 1024;
    };

    /**
     * Open a crash-safe, mutable service: load the snapshot (or
     * start empty), replay the journal tail (discarding a torn
     * tail; refusing corruption), then compact — the service
     * starts from snapshot ≡ store and an empty journal, and every
     * subsequent addRecord/addFingerprint is journaled + fsynced
     * *before* it is acknowledged. An acked add therefore survives
     * kill -9 at any instruction.
     */
    static LoadResult<AttackService>
    openDurable(const DurabilityConfig &config);

    /** True when adds are journaled (openDurable). */
    bool durable() const { return wal != nullptr; }

    /** Journal entries since the last checkpoint (0 when not
     *  durable). */
    std::size_t walEntries() const;

    /**
     * Compact now: durable snapshot rewrite + fresh empty journal,
     * under the exclusive lock. Empty string on success, reason on
     * failure (the journal keeps accumulating; durability is not
     * lost, only compaction).
     */
    std::string checkpoint();

    /** True when the backend cannot accept new records. */
    bool readOnly() const { return mapped.has_value(); }

    /** Number of records. */
    std::size_t size() const;

    /**
     * Use @p pool (not owned; null reverts to serial) for the
     * backend's fallback scans and batch queries.
     */
    void setThreadPool(ThreadPool *pool);

    /**
     * The one identification entry point: dispatches on
     * req.options to the backend's indexed or linear path, under a
     * shared lock, and resolves labels. Verdict bit-identical to
     * the corresponding direct backend query.
     */
    IdentifyVerdict identify(const IdentifyRequest &req) const;

    /**
     * Batch identification under one option set — the entry the
     * server's micro-batcher feeds. In-memory backends run
     * FingerprintStore::queryBatch across the thread pool; each
     * element is bit-identical to the corresponding identify()
     * call.
     */
    std::vector<IdentifyVerdict>
    identifyBatch(const std::vector<BitVec> &error_strings,
                  const QueryOptions &options) const;

    /** Outcome of a mutating add. */
    struct AddOutcome
    {
        /** True when the record was added. */
        bool added = false;

        /** New record index (valid when added). */
        std::size_t record = 0;

        /** Fingerprint weight in volatile cells (valid when
         *  added). */
        std::size_t weight = 0;

        /** Reason the add was refused (read-only backend, no error
         *  strings); empty on success. */
        std::string error;
    };

    /**
     * Characterize-and-add (Algorithm 1 behind the facade):
     * intersect @p error_strings into a fingerprint and add it
     * under @p label. Takes the exclusive lock; concurrent
     * identifies simply wait. Refused (with a reason) on a
     * read-only backend or an empty observation set.
     */
    AddOutcome addFingerprint(const ChipLabel &label,
                              const std::vector<BitVec> &error_strings);

    /** Add an already-characterized fingerprint (the supply-chain
     *  attacker's interception path). Same locking as
     *  addFingerprint(). */
    AddOutcome addRecord(ChipLabel label, Fingerprint fp);

    /** Backend-independent database diagnostics. */
    ServiceDbStats dbStats() const;

    /** Merged service counters (see ServiceStats). */
    AttackStats snapshot() const;

    /** JSON rendering of snapshot() plus record count and backend —
     *  the pcaused live stats endpoint payload. */
    std::string statsJson() const;

    /** The in-memory backend, or null when serving a mapped file. */
    const FingerprintStore *store() const
    {
        return owned ? &*owned : nullptr;
    }

    /** The wrapped plain database, or null when mapped. */
    const FingerprintDb *db() const
    {
        return owned ? &owned->db() : nullptr;
    }

    /** Label of record @p i (copied; safe past the call). */
    std::string label(std::size_t i) const;

  private:
    /** Backend query dispatch; callers hold the lock. */
    IdentifyResult dispatch(const BitVec &error_string,
                            const QueryOptions &options,
                            AttackStats *delta) const;

    /** Resolve an IdentifyResult into a labeled verdict; callers
     *  hold the lock. */
    IdentifyVerdict resolve(const IdentifyResult &r,
                            AttackStats delta) const;

    /** checkpoint() body; the caller holds the exclusive lock (or
     *  sole ownership during openDurable). */
    std::string checkpointLocked();

    std::optional<FingerprintStore> owned;
    std::optional<MappedStore> mapped;

    /** Journal + paths when durable; null otherwise. */
    std::unique_ptr<Wal> wal;
    DurabilityConfig dur;

    /** Shared for queries, exclusive for adds. In a unique_ptr so
     *  the service stays movable (LoadResult requires it). */
    std::unique_ptr<std::shared_mutex> gate;

    std::unique_ptr<ServiceStats> counters;
};

} // namespace pcause

#endif // PCAUSE_CORE_SERVICE_HH
