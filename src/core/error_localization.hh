/**
 * @file
 * Error localization (paper Section 8.3).
 *
 * Every result in the paper assumes the attacker knows which bits of
 * an approximate output are erroneous. Section 8.3 sketches three
 * ways to get there from the approximate output alone; all three
 * are implemented here:
 *
 * 1. Known-input recomputation: when the output is a computation
 *    over known inputs, recompute the exact output and XOR.
 * 2. Noise estimation: approximate-DRAM error looks like salt
 *    noise; a denoising filter (median) estimates the exact image
 *    and flags candidate error bits.
 * 3. Speculative matching: run identification over candidate error
 *    sets and accept whichever lands below the distance threshold.
 */

#ifndef PCAUSE_CORE_ERROR_LOCALIZATION_HH
#define PCAUSE_CORE_ERROR_LOCALIZATION_HH

#include <functional>
#include <optional>
#include <vector>

#include "core/identify.hh"
#include "image/image.hh"
#include "util/bitvec.hh"

namespace pcause
{

/** Quality of a localization against ground truth. */
struct LocalizationQuality
{
    double precision;  //!< flagged bits that are real errors
    double recall;     //!< real errors that were flagged
    std::size_t flagged;
    std::size_t actual;
};

/**
 * Technique 1: recompute the exact output from known inputs.
 *
 * @param approx_output  the published approximate output
 * @param input          the (known) computation input
 * @param compute        the computation the victim ran
 * @return the localized error bitstring
 */
BitVec localizeByRecompute(const BitVec &approx_output,
                           const Image &input,
                           const std::function<Image(const Image &)>
                           &compute);

/**
 * Technique 2: estimate the exact image by denoising the
 * approximate one (median filter), then flag differing bits.
 *
 * @param approx_image  image rebuilt from the approximate output
 * @param radius        median window radius
 */
BitVec localizeByDenoising(const Image &approx_image,
                           unsigned radius = 1);

/**
 * Technique 3: speculative matching — test candidate error strings
 * against the fingerprint database and return the first candidate
 * index that identifies a chip, with the identification result.
 */
std::optional<std::pair<std::size_t, IdentifyResult>>
localizeSpeculative(const std::vector<BitVec> &candidates,
                    const FingerprintDb &db,
                    const IdentifyParams &params = {});

/** Score a localization against the true error string. */
LocalizationQuality scoreLocalization(const BitVec &flagged,
                                      const BitVec &truth);

} // namespace pcause

#endif // PCAUSE_CORE_ERROR_LOCALIZATION_HH
