#include "core/serialize.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace pcause
{

namespace
{

constexpr char dbMagic[4] = {'P', 'C', 'D', 'B'};
constexpr std::uint32_t dbVersion = 1;

template <typename T>
void
writeScalar(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
T
readScalar(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!in)
        fatal("loadDatabase: truncated input");
    return value;
}

} // anonymous namespace

bool
saveDatabase(const FingerprintDb &db, std::ostream &out)
{
    out.write(dbMagic, sizeof(dbMagic));
    writeScalar<std::uint32_t>(out, dbVersion);
    writeScalar<std::uint64_t>(out, db.size());

    for (std::size_t i = 0; i < db.size(); ++i) {
        const FingerprintRecord &rec = db.record(i);
        writeScalar<std::uint32_t>(
            out, static_cast<std::uint32_t>(rec.label.size()));
        out.write(rec.label.data(),
                  static_cast<std::streamsize>(rec.label.size()));
        writeScalar<std::uint32_t>(out, rec.fingerprint.sources());
        writeScalar<std::uint64_t>(out, rec.fingerprint.bits().size());

        const auto positions = rec.fingerprint.bits().setBits();
        writeScalar<std::uint64_t>(out, positions.size());
        for (auto pos : positions)
            writeScalar<std::uint32_t>(
                out, static_cast<std::uint32_t>(pos));
    }
    return out.good();
}

bool
saveDatabase(const FingerprintDb &db, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    return saveDatabase(db, out);
}

FingerprintDb
loadDatabase(std::istream &in)
{
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, dbMagic, sizeof(dbMagic)) != 0)
        fatal("loadDatabase: not a Probable Cause database");
    const auto version = readScalar<std::uint32_t>(in);
    if (version != dbVersion)
        fatal("loadDatabase: unsupported version %u", version);

    FingerprintDb db;
    const auto count = readScalar<std::uint64_t>(in);
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto label_len = readScalar<std::uint32_t>(in);
        std::string label(label_len, '\0');
        in.read(label.data(), label_len);
        if (!in)
            fatal("loadDatabase: truncated label");

        const auto sources = readScalar<std::uint32_t>(in);
        const auto universe = readScalar<std::uint64_t>(in);
        const auto positions = readScalar<std::uint64_t>(in);

        BitVec bits(universe);
        for (std::uint64_t p = 0; p < positions; ++p) {
            const auto pos = readScalar<std::uint32_t>(in);
            if (pos >= universe)
                fatal("loadDatabase: position beyond universe");
            bits.set(pos);
        }

        // Rebuild the fingerprint with its source count: seed then
        // self-augment (intersection with itself is the identity).
        Fingerprint fp(bits);
        for (std::uint32_t s = 1; s < sources; ++s)
            fp.augment(bits);
        db.add(std::move(label), std::move(fp));
    }
    return db;
}

FingerprintDb
loadDatabase(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("loadDatabase: cannot open %s", path.c_str());
    return loadDatabase(in);
}

bool
saveBitVec(const BitVec &bits, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write("PCBV", 4);
    writeScalar<std::uint32_t>(out, 1);
    writeScalar<std::uint64_t>(out, bits.size());
    std::uint8_t byte = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits.get(i))
            byte |= static_cast<std::uint8_t>(1u << (i % 8));
        if (i % 8 == 7 || i + 1 == bits.size()) {
            out.put(static_cast<char>(byte));
            byte = 0;
        }
    }
    return out.good();
}

BitVec
loadBitVec(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("loadBitVec: cannot open %s", path.c_str());
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, "PCBV", 4) != 0)
        fatal("loadBitVec: %s is not a bit-vector dump",
              path.c_str());
    const auto version = readScalar<std::uint32_t>(in);
    if (version != 1)
        fatal("loadBitVec: unsupported version %u", version);
    const auto nbits = readScalar<std::uint64_t>(in);

    BitVec bits(nbits);
    std::uint8_t byte = 0;
    for (std::uint64_t i = 0; i < nbits; ++i) {
        if (i % 8 == 0) {
            int c = in.get();
            if (c == EOF)
                fatal("loadBitVec: truncated input");
            byte = static_cast<std::uint8_t>(c);
        }
        if ((byte >> (i % 8)) & 1)
            bits.set(i);
    }
    return bits;
}

std::size_t
recordDiskSize(std::size_t weight, std::size_t label_len)
{
    return sizeof(std::uint32_t) + label_len   // label
        + sizeof(std::uint32_t)                // sources
        + sizeof(std::uint64_t)                // universe
        + sizeof(std::uint64_t)                // position count
        + weight * sizeof(std::uint32_t);      // positions
}

} // namespace pcause
