#include "core/serialize.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/logging.hh"

namespace pcause
{

namespace
{

constexpr char dbMagic[4] = {'P', 'C', 'D', 'B'};
constexpr std::uint32_t dbVersionV1 = 1;
constexpr std::uint32_t dbVersionV2 = 2;

/** Pre-allocation cap for the untrusted header record count. */
constexpr std::uint64_t maxPlausibleRecords = 1024;

/** Sanity cap on a chip label: real labels are tens of bytes. */
constexpr std::uint32_t maxLabelBytes = 1u << 16;

template <typename T>
void
writeScalar(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

/**
 * Error-returning binary reader: every read either succeeds or
 * latches a formatted error message; once failed, further reads are
 * no-ops, so parse code can check once per record.
 */
class Reader
{
  public:
    explicit Reader(std::istream &stream) : in(stream) {}

    bool failed() const { return !msg.empty(); }
    const std::string &error() const { return msg; }

    void fail(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)))
    {
        if (failed())
            return;
        char buf[256];
        va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        msg = buf;
    }

    template <typename T>
    bool read(T &value, const char *what)
    {
        if (failed())
            return false;
        in.read(reinterpret_cast<char *>(&value), sizeof(value));
        if (!in) {
            fail("truncated %s", what);
            return false;
        }
        return true;
    }

    bool readBytes(char *dst, std::size_t len, const char *what)
    {
        if (failed())
            return false;
        in.read(dst, static_cast<std::streamsize>(len));
        if (!in) {
            fail("truncated %s", what);
            return false;
        }
        return true;
    }

  private:
    std::istream &in;
    std::string msg;
};

/** One record as parsed off disk. */
struct RawRecord
{
    std::string label;
    std::uint32_t sources = 0;
    BitVec bits;
    MinHashSignature sig; //!< empty in v1 files
};

/** Parsed file: header parameters plus all records. */
struct RawDatabase
{
    std::uint32_t version = 0;
    MinHashParams index;
    std::vector<RawRecord> records;
};

/**
 * Parse a whole PCDB stream. Returns the database or an error
 * message (exactly one of the two).
 */
std::string
parseDatabase(std::istream &in, RawDatabase &out)
{
    Reader r(in);
    char magic[4];
    if (!r.readBytes(magic, sizeof(magic), "magic") ||
        std::memcmp(magic, dbMagic, sizeof(dbMagic)) != 0)
        return "not a Probable Cause database";
    if (!r.read(out.version, "version"))
        return r.error();
    if (out.version != dbVersionV1 && out.version != dbVersionV2) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "unsupported version %u",
                      out.version);
        return buf;
    }

    if (out.version >= dbVersionV2) {
        r.read(out.index.numHashes, "minhash header");
        r.read(out.index.bands, "minhash header");
        r.read(out.index.seed, "minhash header");
        if (r.failed())
            return r.error();
        if (out.index.numHashes == 0 || out.index.bands == 0 ||
            out.index.numHashes % out.index.bands != 0)
            return "invalid minhash parameters in header";
    }

    std::uint64_t count = 0;
    if (!r.read(count, "record count"))
        return r.error();
    // count is untrusted: a hostile or corrupt header can claim
    // 2^64 records. Cap the pre-allocation — a fabricated count
    // then fails cleanly on the first missing record instead of
    // dying in reserve().
    out.records.reserve(
        std::min<std::uint64_t>(count, maxPlausibleRecords));
    for (std::uint64_t i = 0; i < count; ++i) {
        RawRecord rec;
        std::uint32_t label_len = 0;
        r.read(label_len, "label length");
        if (r.failed())
            return r.error();
        if (label_len > maxLabelBytes)
            return "implausible label length";
        rec.label.assign(label_len, '\0');
        r.readBytes(rec.label.data(), label_len, "label");
        r.read(rec.sources, "source count");
        std::uint64_t universe = 0, positions = 0;
        r.read(universe, "universe size");
        r.read(positions, "position count");
        if (r.failed())
            return r.error();
        if (rec.sources == 0)
            return "record with zero sources";
        if (positions > universe)
            return "more positions than universe bits";

        rec.bits = BitVec(universe);
        for (std::uint64_t p = 0; p < positions; ++p) {
            std::uint32_t pos = 0;
            if (!r.read(pos, "position"))
                return r.error();
            if (pos >= universe)
                return "position beyond universe";
            rec.bits.set(pos);
        }

        if (out.version >= dbVersionV2) {
            rec.sig.resize(out.index.numHashes);
            for (auto &h : rec.sig) {
                if (!r.read(h, "signature"))
                    return r.error();
            }
        }
        out.records.push_back(std::move(rec));
    }
    return "";
}

/** Write one v2 record. */
void
writeRecord(std::ostream &out, const FingerprintRecord &rec,
            const MinHashSignature &sig)
{
    writeScalar<std::uint32_t>(
        out, static_cast<std::uint32_t>(rec.label.size()));
    out.write(rec.label.data(),
              static_cast<std::streamsize>(rec.label.size()));
    writeScalar<std::uint32_t>(out, rec.fingerprint.sources());
    writeScalar<std::uint64_t>(out, rec.fingerprint.bits().size());

    const auto positions = rec.fingerprint.bits().setBits();
    writeScalar<std::uint64_t>(out, positions.size());
    for (auto pos : positions)
        writeScalar<std::uint32_t>(out,
                                   static_cast<std::uint32_t>(pos));
    for (auto h : sig)
        writeScalar<std::uint32_t>(out, h);
}

/** Write the v2 header for @p params and @p count records. */
void
writeHeader(std::ostream &out, const MinHashParams &params,
            std::uint64_t count)
{
    out.write(dbMagic, sizeof(dbMagic));
    writeScalar<std::uint32_t>(out, dbVersionV2);
    writeScalar<std::uint32_t>(out, params.numHashes);
    writeScalar<std::uint32_t>(out, params.bands);
    writeScalar<std::uint64_t>(out, params.seed);
    writeScalar<std::uint64_t>(out, count);
}

} // anonymous namespace

bool
saveDatabase(const FingerprintDb &db, std::ostream &out)
{
    const MinHashParams params;
    writeHeader(out, params, db.size());
    for (std::size_t i = 0; i < db.size(); ++i) {
        const FingerprintRecord &rec = db.record(i);
        writeRecord(out, rec,
                    minhashSignature(rec.fingerprint.bits(), params));
    }
    return out.good();
}

bool
saveDatabase(const FingerprintDb &db, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    return saveDatabase(db, out);
}

bool
saveStore(const FingerprintStore &store, std::ostream &out)
{
    writeHeader(out, store.indexParams(), store.size());
    for (std::size_t i = 0; i < store.size(); ++i)
        writeRecord(out, store.record(i), store.signature(i));
    return out.good();
}

bool
saveStore(const FingerprintStore &store, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    return saveStore(store, out);
}

DbLoadResult
loadDatabase(std::istream &in)
{
    RawDatabase raw;
    const std::string err = parseDatabase(in, raw);
    if (!err.empty())
        return {std::nullopt, "loadDatabase: " + err};

    FingerprintDb db;
    for (RawRecord &rec : raw.records) {
        db.add(std::move(rec.label),
               Fingerprint(std::move(rec.bits), rec.sources));
    }
    return {std::move(db), ""};
}

DbLoadResult
loadDatabase(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {std::nullopt, "loadDatabase: cannot open " + path};
    return loadDatabase(in);
}

StoreLoadResult
loadStore(std::istream &in)
{
    RawDatabase raw;
    const std::string err = parseDatabase(in, raw);
    if (!err.empty())
        return {std::nullopt, "loadStore: " + err};

    FingerprintStore store(raw.version >= dbVersionV2
                               ? raw.index
                               : MinHashParams{});
    for (RawRecord &rec : raw.records) {
        Fingerprint fp(std::move(rec.bits), rec.sources);
        if (raw.version >= dbVersionV2) {
            store.addWithSignature(std::move(rec.label), std::move(fp),
                                   std::move(rec.sig));
        } else {
            // v1 carries no signatures: recompute on load.
            store.add(std::move(rec.label), std::move(fp));
        }
    }
    return {std::move(store), ""};
}

StoreLoadResult
loadStore(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {std::nullopt, "loadStore: cannot open " + path};
    return loadStore(in);
}

bool
saveBitVec(const BitVec &bits, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write("PCBV", 4);
    writeScalar<std::uint32_t>(out, 1);
    writeScalar<std::uint64_t>(out, bits.size());
    std::uint8_t byte = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits.get(i))
            byte |= static_cast<std::uint8_t>(1u << (i % 8));
        if (i % 8 == 7 || i + 1 == bits.size()) {
            out.put(static_cast<char>(byte));
            byte = 0;
        }
    }
    return out.good();
}

BitVec
loadBitVec(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("loadBitVec: cannot open %s", path.c_str());
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, "PCBV", 4) != 0)
        fatal("loadBitVec: %s is not a bit-vector dump",
              path.c_str());
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!in)
        fatal("loadBitVec: truncated input");
    if (version != 1)
        fatal("loadBitVec: unsupported version %u", version);
    std::uint64_t nbits = 0;
    in.read(reinterpret_cast<char *>(&nbits), sizeof(nbits));
    if (!in)
        fatal("loadBitVec: truncated input");

    BitVec bits(nbits);
    std::uint8_t byte = 0;
    for (std::uint64_t i = 0; i < nbits; ++i) {
        if (i % 8 == 0) {
            int c = in.get();
            if (c == EOF)
                fatal("loadBitVec: truncated input");
            byte = static_cast<std::uint8_t>(c);
        }
        if ((byte >> (i % 8)) & 1)
            bits.set(i);
    }
    return bits;
}

std::size_t
recordDiskSize(std::size_t weight, std::size_t label_len,
               std::size_t signature_hashes)
{
    return sizeof(std::uint32_t) + label_len   // label
        + sizeof(std::uint32_t)                // sources
        + sizeof(std::uint64_t)                // universe
        + sizeof(std::uint64_t)                // position count
        + weight * sizeof(std::uint32_t)       // positions
        + signature_hashes * sizeof(std::uint32_t); // signature
}

} // namespace pcause
