#include "core/serialize.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/pcdb_format.hh"
#include "util/failpoint.hh"
#include "util/logging.hh"

namespace pcause
{

namespace
{

constexpr char dbMagic[4] = {'P', 'C', 'D', 'B'};
constexpr std::uint32_t dbVersionV1 = pcdb::versionV1;
constexpr std::uint32_t dbVersionV2 = pcdb::versionV2;
constexpr std::uint32_t dbVersionV3 = pcdb::versionV3;

/** Pre-allocation cap for the untrusted header record count. */
constexpr std::uint64_t maxPlausibleRecords = 1024;

/** Sanity cap on a chip label: real labels are tens of bytes. */
constexpr std::uint32_t maxLabelBytes = 1u << 16;

template <typename T>
void
writeScalar(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

/**
 * Error-returning binary reader: every read either succeeds or
 * latches a formatted error message; once failed, further reads are
 * no-ops, so parse code can check once per record.
 */
class Reader
{
  public:
    explicit Reader(std::istream &stream) : in(stream) {}

    bool failed() const { return !msg.empty(); }
    const std::string &error() const { return msg; }

    void fail(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)))
    {
        if (failed())
            return;
        char buf[256];
        va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        msg = buf;
    }

    template <typename T>
    bool read(T &value, const char *what)
    {
        if (failed())
            return false;
        in.read(reinterpret_cast<char *>(&value), sizeof(value));
        if (!in) {
            fail("truncated %s", what);
            return false;
        }
        return true;
    }

    bool readBytes(char *dst, std::size_t len, const char *what)
    {
        if (failed())
            return false;
        in.read(dst, static_cast<std::streamsize>(len));
        if (!in) {
            fail("truncated %s", what);
            return false;
        }
        return true;
    }

  private:
    std::istream &in;
    std::string msg;
};

/** One record as parsed off disk. */
struct RawRecord
{
    std::string label;
    std::uint32_t sources = 0;
    BitVec bits;
    MinHashSignature sig; //!< empty in v1 files
};

/** Parsed file: header parameters plus all records. */
struct RawDatabase
{
    std::uint32_t version = 0;
    MinHashParams index;
    std::vector<RawRecord> records;
};

/** Skip (and discard) @p bytes from the reader. */
void
skipBytes(Reader &r, std::uint64_t bytes, const char *what)
{
    char buf[4096];
    while (bytes > 0 && !r.failed()) {
        const std::size_t chunk = bytes < sizeof(buf)
                                      ? static_cast<std::size_t>(bytes)
                                      : sizeof(buf);
        r.readBytes(buf, chunk, what);
        bytes -= chunk;
    }
}

/**
 * Parse the body of a v3 stream (magic and version already
 * consumed). Validates the canonical layout (see
 * core/pcdb_format.hh), so every strict prefix of a valid file
 * fails with a truncation error and every offset mismatch is
 * rejected before any payload is interpreted.
 */
std::string
parseV3(Reader &r, RawDatabase &out)
{
    pcdb::V3Header h;
    std::uint32_t reserved = 0;
    r.read(h.numHashes, "minhash header");
    r.read(h.bands, "minhash header");
    r.read(h.probes, "minhash header");
    r.read(reserved, "header reserved");
    r.read(h.seed, "minhash header");
    r.read(h.recordCount, "record count");
    r.read(h.totalPositions, "position total");
    r.read(h.labelBytes, "label byte total");
    r.read(h.fileSize, "file size");
    r.read(h.recordTableOff, "section offsets");
    r.read(h.sigOff, "section offsets");
    r.read(h.posOff, "section offsets");
    r.read(h.labelOff, "section offsets");
    r.read(h.lshOff, "section offsets");
    if (r.failed())
        return r.error();
    if (h.numHashes == 0 || h.bands == 0 ||
        h.numHashes % h.bands != 0)
        return "invalid minhash parameters in header";
    if (reserved != 0)
        return "nonzero reserved header field";

    const pcdb::V3Layout lay =
        pcdb::v3Layout(h.recordCount, h.numHashes, h.totalPositions,
                       h.labelBytes, h.bands);
    if (h.recordTableOff != lay.recordTableOff ||
        h.sigOff != lay.sigOff || h.posOff != lay.posOff ||
        h.labelOff != lay.labelOff || h.lshOff != lay.lshOff ||
        h.fileSize != lay.fileSize)
        return "non-canonical v3 section layout";

    out.index.numHashes = h.numHashes;
    out.index.bands = h.bands;
    out.index.seed = h.seed;
    out.index.probes = h.probes;

    // --- record table ---------------------------------------------
    std::vector<pcdb::V3RecordEntry> entries;
    entries.reserve(std::min<std::uint64_t>(h.recordCount,
                                            maxPlausibleRecords));
    std::uint64_t next_label = 0, next_pos = 0;
    for (std::uint64_t i = 0; i < h.recordCount; ++i) {
        pcdb::V3RecordEntry e;
        r.read(e.labelOff, "record table");
        r.read(e.posOff, "record table");
        r.read(e.universe, "record table");
        r.read(e.labelLen, "record table");
        r.read(e.posCount, "record table");
        r.read(e.sources, "record table");
        r.read(e.reserved, "record table");
        if (r.failed())
            return r.error();
        if (e.labelLen > maxLabelBytes)
            return "implausible label length";
        if (e.labelOff != next_label || e.posOff != next_pos ||
            e.reserved != 0)
            return "non-canonical record table";
        if (e.sources == 0)
            return "record with zero sources";
        if (e.posCount > e.universe)
            return "more positions than universe bits";
        next_label += e.labelLen;
        next_pos += e.posCount;
        entries.push_back(e);
    }
    if (next_label != h.labelBytes)
        return "label arena size mismatch";
    if (next_pos != h.totalPositions)
        return "position arena size mismatch";

    out.records.resize(entries.size());

    // --- signature arena ------------------------------------------
    for (std::size_t i = 0; i < entries.size(); ++i) {
        out.records[i].sig.resize(h.numHashes);
        for (auto &hash : out.records[i].sig) {
            if (!r.read(hash, "signature arena"))
                return r.error();
        }
    }
    skipBytes(r, lay.posOff - (h.sigOff + h.recordCount *
                                              h.numHashes * 4),
              "signature padding");

    // --- position arena -------------------------------------------
    for (std::size_t i = 0; i < entries.size(); ++i) {
        RawRecord &rec = out.records[i];
        rec.sources = entries[i].sources;
        rec.bits = BitVec(entries[i].universe);
        std::uint32_t prev = 0;
        for (std::uint32_t p = 0; p < entries[i].posCount; ++p) {
            std::uint32_t pos = 0;
            if (!r.read(pos, "position arena"))
                return r.error();
            if (pos >= entries[i].universe)
                return "position beyond universe";
            if (p > 0 && pos <= prev)
                return "positions not strictly ascending";
            prev = pos;
            rec.bits.set(pos);
        }
    }
    skipBytes(r, lay.labelOff - (h.posOff + h.totalPositions * 4),
              "position padding");

    // --- label arena ----------------------------------------------
    for (std::size_t i = 0; i < entries.size(); ++i) {
        out.records[i].label.assign(entries[i].labelLen, '\0');
        r.readBytes(out.records[i].label.data(), entries[i].labelLen,
                    "label arena");
        if (r.failed())
            return r.error();
    }
    skipBytes(r, lay.lshOff - (h.labelOff + h.labelBytes),
              "label padding");

    // --- LSH section ----------------------------------------------
    // The stream loader rebuilds the in-memory index from the
    // signatures; the serialized buckets exist for the mmap reader.
    // Still consume and sanity-check them so a truncated or padded
    // tail cannot load silently.
    for (std::uint32_t band = 0; band < h.bands; ++band) {
        std::uint64_t count = 0;
        if (!r.read(count, "lsh band header"))
            return r.error();
        if (count != h.recordCount)
            return "lsh band entry count mismatch";
        skipBytes(r, pcdb::v3BandBytes(h.recordCount) - 8,
                  "lsh band");
        if (r.failed())
            return r.error();
    }
    return r.failed() ? r.error() : "";
}

/**
 * Parse a whole PCDB stream. Returns the database or an error
 * message (exactly one of the two).
 */
std::string
parseDatabase(std::istream &in, RawDatabase &out)
{
    Reader r(in);
    char magic[4];
    if (!r.readBytes(magic, sizeof(magic), "magic") ||
        std::memcmp(magic, dbMagic, sizeof(dbMagic)) != 0)
        return "not a Probable Cause database";
    if (!r.read(out.version, "version"))
        return r.error();
    if (out.version == dbVersionV3)
        return parseV3(r, out);
    if (out.version != dbVersionV1 && out.version != dbVersionV2) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "unsupported version %u",
                      out.version);
        return buf;
    }

    if (out.version >= dbVersionV2) {
        r.read(out.index.numHashes, "minhash header");
        r.read(out.index.bands, "minhash header");
        r.read(out.index.seed, "minhash header");
        if (r.failed())
            return r.error();
        if (out.index.numHashes == 0 || out.index.bands == 0 ||
            out.index.numHashes % out.index.bands != 0)
            return "invalid minhash parameters in header";
    }

    std::uint64_t count = 0;
    if (!r.read(count, "record count"))
        return r.error();
    // count is untrusted: a hostile or corrupt header can claim
    // 2^64 records. Cap the pre-allocation — a fabricated count
    // then fails cleanly on the first missing record instead of
    // dying in reserve().
    out.records.reserve(
        std::min<std::uint64_t>(count, maxPlausibleRecords));
    for (std::uint64_t i = 0; i < count; ++i) {
        RawRecord rec;
        std::uint32_t label_len = 0;
        r.read(label_len, "label length");
        if (r.failed())
            return r.error();
        if (label_len > maxLabelBytes)
            return "implausible label length";
        rec.label.assign(label_len, '\0');
        r.readBytes(rec.label.data(), label_len, "label");
        r.read(rec.sources, "source count");
        std::uint64_t universe = 0, positions = 0;
        r.read(universe, "universe size");
        r.read(positions, "position count");
        if (r.failed())
            return r.error();
        if (rec.sources == 0)
            return "record with zero sources";
        if (positions > universe)
            return "more positions than universe bits";

        rec.bits = BitVec(universe);
        for (std::uint64_t p = 0; p < positions; ++p) {
            std::uint32_t pos = 0;
            if (!r.read(pos, "position"))
                return r.error();
            if (pos >= universe)
                return "position beyond universe";
            rec.bits.set(pos);
        }

        if (out.version >= dbVersionV2) {
            rec.sig.resize(out.index.numHashes);
            for (auto &h : rec.sig) {
                if (!r.read(h, "signature"))
                    return r.error();
            }
        }
        out.records.push_back(std::move(rec));
    }
    return "";
}

/** Write one v2 record. */
void
writeRecord(std::ostream &out, const FingerprintRecord &rec,
            const MinHashSignature &sig)
{
    writeScalar<std::uint32_t>(
        out, static_cast<std::uint32_t>(rec.label.size()));
    out.write(rec.label.data(),
              static_cast<std::streamsize>(rec.label.size()));
    writeScalar<std::uint32_t>(out, rec.fingerprint.sources());
    writeScalar<std::uint64_t>(out, rec.fingerprint.bits().size());

    const auto positions = rec.fingerprint.bits().setBits();
    writeScalar<std::uint64_t>(out, positions.size());
    for (auto pos : positions)
        writeScalar<std::uint32_t>(out,
                                   static_cast<std::uint32_t>(pos));
    for (auto h : sig)
        writeScalar<std::uint32_t>(out, h);
}

/** Write the v2 header for @p params and @p count records. */
void
writeHeader(std::ostream &out, const MinHashParams &params,
            std::uint64_t count)
{
    out.write(dbMagic, sizeof(dbMagic));
    writeScalar<std::uint32_t>(out, dbVersionV2);
    writeScalar<std::uint32_t>(out, params.numHashes);
    writeScalar<std::uint32_t>(out, params.bands);
    writeScalar<std::uint64_t>(out, params.seed);
    writeScalar<std::uint64_t>(out, count);
}

/** Write @p n zero bytes (section padding). */
void
writePad(std::ostream &out, std::uint64_t n)
{
    static const char zeros[8] = {};
    while (n > 0) {
        const std::uint64_t chunk =
            n < sizeof(zeros) ? n : sizeof(zeros);
        out.write(zeros, static_cast<std::streamsize>(chunk));
        n -= chunk;
    }
}

} // anonymous namespace

bool
saveDatabase(const FingerprintDb &db, std::ostream &out)
{
    const MinHashParams params;
    writeHeader(out, params, db.size());
    for (std::size_t i = 0; i < db.size(); ++i) {
        const FingerprintRecord &rec = db.record(i);
        writeRecord(out, rec,
                    minhashSignature(rec.fingerprint.bits(), params));
    }
    return out.good();
}

bool
saveDatabase(const FingerprintDb &db, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    return saveDatabase(db, out);
}

bool
saveStore(const FingerprintStore &store, std::ostream &out)
{
    const MinHashParams &prm = store.indexParams();
    const SparseFingerprintArena &sparse = store.sparseFingerprints();
    const std::uint64_t n = store.size();

    std::uint64_t label_bytes = 0;
    for (std::size_t i = 0; i < n; ++i)
        label_bytes += store.record(i).label.size();
    const std::uint64_t total_pos = sparse.totalPositions();

    const pcdb::V3Layout lay = pcdb::v3Layout(
        n, prm.numHashes, total_pos, label_bytes, prm.bands);

    // --- header ---------------------------------------------------
    out.write(dbMagic, sizeof(dbMagic));
    writeScalar<std::uint32_t>(out, dbVersionV3);
    writeScalar<std::uint32_t>(out, prm.numHashes);
    writeScalar<std::uint32_t>(out, prm.bands);
    writeScalar<std::uint32_t>(out, prm.probes);
    writeScalar<std::uint32_t>(out, 0); // reserved
    writeScalar<std::uint64_t>(out, prm.seed);
    writeScalar<std::uint64_t>(out, n);
    writeScalar<std::uint64_t>(out, total_pos);
    writeScalar<std::uint64_t>(out, label_bytes);
    writeScalar<std::uint64_t>(out, lay.fileSize);
    writeScalar<std::uint64_t>(out, lay.recordTableOff);
    writeScalar<std::uint64_t>(out, lay.sigOff);
    writeScalar<std::uint64_t>(out, lay.posOff);
    writeScalar<std::uint64_t>(out, lay.labelOff);
    writeScalar<std::uint64_t>(out, lay.lshOff);

    // --- record table (canonical running arena offsets) -----------
    std::uint64_t next_label = 0, next_pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const FingerprintRecord &rec = store.record(i);
        const SparseView v = sparse.view(i);
        writeScalar<std::uint64_t>(out, next_label);
        writeScalar<std::uint64_t>(out, next_pos);
        writeScalar<std::uint64_t>(out, v.universe);
        writeScalar<std::uint32_t>(
            out, static_cast<std::uint32_t>(rec.label.size()));
        writeScalar<std::uint32_t>(
            out, static_cast<std::uint32_t>(v.count));
        writeScalar<std::uint32_t>(out, rec.fingerprint.sources());
        writeScalar<std::uint32_t>(out, 0); // reserved
        next_label += rec.label.size();
        next_pos += v.count;
    }

    // --- signature arena ------------------------------------------
    for (std::size_t i = 0; i < n; ++i) {
        const MinHashSignature &sig = store.signature(i);
        out.write(reinterpret_cast<const char *>(sig.data()),
                  static_cast<std::streamsize>(sig.size() *
                                               sizeof(std::uint32_t)));
    }
    writePad(out, lay.posOff -
                      (lay.sigOff + n * prm.numHashes *
                                        sizeof(std::uint32_t)));

    // --- position arena (the sparse arena, verbatim) --------------
    const auto &arena = sparse.positions();
    out.write(reinterpret_cast<const char *>(arena.data()),
              static_cast<std::streamsize>(arena.size() *
                                           sizeof(std::uint32_t)));
    writePad(out, lay.labelOff -
                      (lay.posOff + total_pos * sizeof(std::uint32_t)));

    // --- label arena ----------------------------------------------
    for (std::size_t i = 0; i < n; ++i) {
        const ChipLabel &label = store.record(i).label;
        out.write(label.data(),
                  static_cast<std::streamsize>(label.size()));
    }
    writePad(out, lay.lshOff - (lay.labelOff + label_bytes));

    // --- LSH section: per-band sorted (key, id) arrays ------------
    for (std::uint32_t band = 0; band < prm.bands; ++band) {
        const auto entries = store.index().bandEntries(band);
        PC_ASSERT(entries.size() == n,
                  "saveStore: band entry count mismatch");
        writeScalar<std::uint64_t>(out, entries.size());
        for (const auto &e : entries)
            writeScalar<std::uint64_t>(out, e.first);
        for (const auto &e : entries)
            writeScalar<std::uint32_t>(out, e.second);
        writePad(out, pcdb::v3BandBytes(n) -
                          (8 + entries.size() * 12));
    }
    return out.good();
}

bool
saveStore(const FingerprintStore &store, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    return saveStore(store, out);
}

bool
saveStoreDurable(const FingerprintStore &store,
                 const std::string &path, std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = "saveStoreDurable: " + why;
        return false;
    };

    // Same directory as the target so the rename is a same-fs
    // atomic replace; pid-suffixed so two writers never collide.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            return fail("cannot open " + tmp);
        const bool wrote =
            saveStore(store, out) && !failpoint::hit("store.save.write");
        out.flush();
        if (!wrote || !out.good()) {
            out.close();
            ::unlink(tmp.c_str());
            return fail("write to " + tmp + " failed");
        }
    }

    // fsync the temp image before the rename: rename-then-sync can
    // surface a zero-length file after a power cut.
    const int tfd = ::open(tmp.c_str(), O_RDONLY);
    if (tfd < 0) {
        ::unlink(tmp.c_str());
        return fail("reopen " + tmp + ": " + std::strerror(errno));
    }
    if (failpoint::hit("store.save.fsync") || ::fsync(tfd) != 0) {
        ::close(tfd);
        ::unlink(tmp.c_str());
        return fail("fsync " + tmp + " failed");
    }
    ::close(tfd);

    if (failpoint::hit("store.save.rename") ||
        ::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return fail("rename to " + path + " failed");
    }

    // Make the rename itself durable (best effort: some
    // filesystems refuse directory fsync).
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        (void)::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

DbLoadResult
loadDatabase(std::istream &in)
{
    RawDatabase raw;
    const std::string err = parseDatabase(in, raw);
    if (!err.empty())
        return {std::nullopt, "loadDatabase: " + err};

    FingerprintDb db;
    for (RawRecord &rec : raw.records) {
        db.add(std::move(rec.label),
               Fingerprint(std::move(rec.bits), rec.sources));
    }
    return {std::move(db), ""};
}

DbLoadResult
loadDatabase(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {std::nullopt, "loadDatabase: cannot open " + path};
    return loadDatabase(in);
}

StoreLoadResult
loadStore(std::istream &in)
{
    RawDatabase raw;
    const std::string err = parseDatabase(in, raw);
    if (!err.empty())
        return {std::nullopt, "loadStore: " + err};

    FingerprintStore store(raw.version >= dbVersionV2
                               ? raw.index
                               : MinHashParams{});
    for (RawRecord &rec : raw.records) {
        Fingerprint fp(std::move(rec.bits), rec.sources);
        if (raw.version >= dbVersionV2) {
            store.addWithSignature(std::move(rec.label), std::move(fp),
                                   std::move(rec.sig), raw.index);
        } else {
            // v1 carries no signatures: recompute on load.
            store.add(std::move(rec.label), std::move(fp));
        }
    }
    return {std::move(store), ""};
}

StoreLoadResult
loadStore(const std::string &path)
{
    if (failpoint::hit("store.load"))
        return {std::nullopt,
                "loadStore: injected load failure for " + path};
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {std::nullopt, "loadStore: cannot open " + path};
    return loadStore(in);
}

bool
saveBitVec(const BitVec &bits, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write("PCBV", 4);
    writeScalar<std::uint32_t>(out, 1);
    writeScalar<std::uint64_t>(out, bits.size());
    std::uint8_t byte = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits.get(i))
            byte |= static_cast<std::uint8_t>(1u << (i % 8));
        if (i % 8 == 7 || i + 1 == bits.size()) {
            out.put(static_cast<char>(byte));
            byte = 0;
        }
    }
    return out.good();
}

BitVec
loadBitVec(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("loadBitVec: cannot open %s", path.c_str());
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, "PCBV", 4) != 0)
        fatal("loadBitVec: %s is not a bit-vector dump",
              path.c_str());
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!in)
        fatal("loadBitVec: truncated input");
    if (version != 1)
        fatal("loadBitVec: unsupported version %u", version);
    std::uint64_t nbits = 0;
    in.read(reinterpret_cast<char *>(&nbits), sizeof(nbits));
    if (!in)
        fatal("loadBitVec: truncated input");

    BitVec bits(nbits);
    std::uint8_t byte = 0;
    for (std::uint64_t i = 0; i < nbits; ++i) {
        if (i % 8 == 0) {
            int c = in.get();
            if (c == EOF)
                fatal("loadBitVec: truncated input");
            byte = static_cast<std::uint8_t>(c);
        }
        if ((byte >> (i % 8)) & 1)
            bits.set(i);
    }
    return bits;
}

std::size_t
recordDiskSize(std::size_t weight, std::size_t label_len,
               std::size_t signature_hashes)
{
    return pcdb::v3RecordEntryBytes            // record-table entry
        + label_len                            // label arena share
        + weight * sizeof(std::uint32_t)       // position arena share
        + signature_hashes * sizeof(std::uint32_t); // signature arena
}

} // namespace pcause
