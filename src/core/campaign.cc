#include "core/campaign.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace pcause
{

namespace
{

// Substream tags keeping the chip-assignment, base, and observation
// draws statistically independent of each other.
constexpr std::uint64_t tagChipOf = 0x63686970ull; // "chip"
constexpr std::uint64_t tagBase = 0x62617365ull;   // "base"
constexpr std::uint64_t tagObs = 0x6f627365ull;    // "obse"

void
checkSpec(const CampaignSpec &spec)
{
    PC_ASSERT(spec.chips > 0 && spec.universeBits > 0 &&
                  spec.fingerprintWeight > 0 &&
                  spec.fingerprintWeight <= spec.universeBits &&
                  spec.keep > 0.0 && spec.keep <= 1.0,
              "CampaignSpec: invalid fleet shape");
}

} // anonymous namespace

std::size_t
campaignChipOf(const CampaignSpec &spec, std::uint64_t index)
{
    checkSpec(spec);
    return static_cast<std::size_t>(
        mix64(mix64(spec.seed, tagChipOf), index) % spec.chips);
}

BitVec
campaignChipBase(const CampaignSpec &spec, std::size_t chip)
{
    checkSpec(spec);
    PC_ASSERT(chip < spec.chips, "campaignChipBase: chip out of range");
    Rng rng(mix64(mix64(spec.seed, tagBase), chip));
    BitVec base(spec.universeBits);
    // Anchor bit: even a pathological draw leaves the base non-empty
    // and chip-specific.
    base.set(chip % spec.universeBits);
    for (std::size_t k = 1; k < spec.fingerprintWeight; ++k)
        base.set(rng.nextBelow(spec.universeBits));
    return base;
}

BitVec
campaignObservation(const CampaignSpec &spec, const BitVec &base,
                    std::uint64_t index)
{
    checkSpec(spec);
    PC_ASSERT(base.size() == spec.universeBits,
              "campaignObservation: base/universe mismatch");
    Rng rng(mix64(mix64(spec.seed, tagObs), index));
    BitVec out = base;
    for (const std::size_t pos : base.setBits()) {
        if (!rng.chance(spec.keep))
            out.clear(pos);
    }
    const std::uint64_t extras =
        spec.extraMax ? rng.nextBelow(spec.extraMax + 1) : 0;
    for (std::uint64_t k = 0; k < extras; ++k)
        out.set(rng.nextBelow(spec.universeBits));
    return out;
}

BitVec
campaignOutput(const CampaignSpec &spec, std::uint64_t index)
{
    return campaignObservation(
        spec, campaignChipBase(spec, campaignChipOf(spec, index)),
        index);
}

} // namespace pcause
