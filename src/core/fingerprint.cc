#include "core/fingerprint.hh"

#include <bit>

#include "util/logging.hh"

namespace pcause
{

Fingerprint::Fingerprint(BitVec first_error_string)
    : pattern(std::move(first_error_string)), numSources(1)
{
}

Fingerprint::Fingerprint(BitVec intersected_pattern,
                         unsigned num_sources)
    : pattern(std::move(intersected_pattern)),
      numSources(num_sources)
{
    PC_ASSERT(num_sources > 0,
              "Fingerprint: adopted pattern needs sources");
}

void
Fingerprint::augment(const BitVec &error_string)
{
    if (numSources == 0) {
        pattern = error_string;
    } else {
        PC_ASSERT(error_string.size() == pattern.size(),
                  "augment: size mismatch");
        pattern &= error_string;
    }
    ++numSources;
}

SparseView
SparseFingerprintArena::view(std::size_t i) const
{
    PC_ASSERT(i < universes.size(),
              "SparseFingerprintArena index out of range");
    SparseView v;
    v.positions = arena.data() + offsets[i];
    v.count = static_cast<std::size_t>(offsets[i + 1] - offsets[i]);
    v.universe = universes[i];
    return v;
}

void
SparseFingerprintArena::add(const BitVec &pattern)
{
    const auto &words = pattern.words();
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            const auto bit = static_cast<std::uint32_t>(
                std::countr_zero(w));
            arena.push_back(static_cast<std::uint32_t>(
                wi * BitVec::wordBits + bit));
            w &= w - 1;
        }
    }
    offsets.push_back(arena.size());
    universes.push_back(pattern.size());
}

void
SparseFingerprintArena::addPositions(const std::uint32_t *positions,
                                     std::size_t position_count,
                                     std::uint64_t universe_bits)
{
    for (std::size_t p = 0; p < position_count; ++p) {
        PC_ASSERT(positions[p] < universe_bits &&
                      (p == 0 || positions[p - 1] < positions[p]),
                  "addPositions: positions must be ascending and in "
                  "universe");
        arena.push_back(positions[p]);
    }
    offsets.push_back(arena.size());
    universes.push_back(universe_bits);
}

void
SparseFingerprintArena::clear()
{
    arena.clear();
    offsets.assign(1, 0);
    universes.clear();
}

} // namespace pcause
