#include "core/fingerprint.hh"

#include "util/logging.hh"

namespace pcause
{

Fingerprint::Fingerprint(BitVec first_error_string)
    : pattern(std::move(first_error_string)), numSources(1)
{
}

Fingerprint::Fingerprint(BitVec intersected_pattern,
                         unsigned num_sources)
    : pattern(std::move(intersected_pattern)),
      numSources(num_sources)
{
    PC_ASSERT(num_sources > 0,
              "Fingerprint: adopted pattern needs sources");
}

void
Fingerprint::augment(const BitVec &error_string)
{
    if (numSources == 0) {
        pattern = error_string;
    } else {
        PC_ASSERT(error_string.size() == pattern.size(),
                  "augment: size mismatch");
        pattern &= error_string;
    }
    ++numSources;
}

} // namespace pcause
