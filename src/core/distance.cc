#include "core/distance.hh"

#include "util/logging.hh"
#include "util/simd.hh"

namespace pcause
{

namespace
{

/**
 * Largest integer miss count still within @p bound for a
 * fingerprint of @p fp_weight bits, computed so that
 * (d <= limit) <=> (double(d) / fp_weight <= bound) under the exact
 * floating-point division the unbounded metric performs. The nudge
 * loops correct any rounding in the double-precision product (each
 * runs at most a step or two). Shared by the dense and sparse
 * bounded kernels so their early-exit decisions cannot diverge.
 */
std::size_t
boundedCountLimit(double bound, std::size_t fp_weight)
{
    const double scaled = bound * static_cast<double>(fp_weight);
    std::size_t limit =
        scaled >= static_cast<double>(fp_weight)
            ? fp_weight
            : (scaled <= 0.0 ? 0
                             : static_cast<std::size_t>(scaled));
    while (limit < fp_weight &&
           static_cast<double>(limit + 1) / fp_weight <= bound)
        ++limit;
    while (limit > 0 &&
           static_cast<double>(limit) / fp_weight > bound)
        --limit;
    return limit;
}

} // anonymous namespace

double
modifiedJaccard(const BitVec &error_string, const BitVec &fingerprint)
{
    PC_ASSERT(error_string.size() == fingerprint.size(),
              "distance: size mismatch");

    const std::size_t we = error_string.popcount();
    const std::size_t wf = fingerprint.popcount();
    if (we == 0 && wf == 0)
        return 0.0;
    if (we == 0 || wf == 0)
        return 1.0;

    // Footnote 2: treat the lower-weight pattern as the fingerprint.
    const BitVec &fp = (wf <= we) ? fingerprint : error_string;
    const BitVec &es = (wf <= we) ? error_string : fingerprint;
    const std::size_t fp_weight = (wf <= we) ? wf : we;

    // d = |fp \ es|, "normalized to the number of errors in the
    // fingerprint" (Section 5.2). Note the paper's pseudocode
    // divides by HAMMINGWEIGHT(errorString) instead; only the
    // prose's fingerprint normalization reproduces the figures'
    // between-class range of [0.75, 1] under accuracy mismatch, so
    // the prose version is implemented.
    const std::size_t d = fp.andNotCount(es);
    return static_cast<double>(d) / fp_weight;
}

double
modifiedJaccardBounded(const BitVec &error_string,
                       const BitVec &fingerprint, double bound,
                       bool *pruned)
{
    return modifiedJaccardBounded(error_string,
                                  error_string.popcount(),
                                  fingerprint, bound, pruned);
}

double
modifiedJaccardBounded(const BitVec &error_string,
                       std::size_t es_weight,
                       const BitVec &fingerprint, double bound,
                       bool *pruned)
{
    PC_ASSERT(error_string.size() == fingerprint.size(),
              "distance: size mismatch");
    if (pruned)
        *pruned = false;

    const std::size_t we = es_weight;
    const std::size_t wf = fingerprint.popcount();
    if (we == 0 && wf == 0)
        return 0.0;
    if (we == 0 || wf == 0)
        return 1.0;

    const BitVec &fp = (wf <= we) ? fingerprint : error_string;
    const BitVec &es = (wf <= we) ? error_string : fingerprint;
    const std::size_t fp_weight = (wf <= we) ? wf : we;

    const std::size_t limit = boundedCountLimit(bound, fp_weight);
    const std::size_t d = fp.andNotCountBounded(es, limit);
    if (d > limit && pruned)
        *pruned = true;
    return static_cast<double>(d) / fp_weight;
}

double
modifiedJaccardSparseBounded(const BitVec &error_string,
                             std::size_t es_weight,
                             const SparseView &fingerprint,
                             double bound, bool *pruned)
{
    PC_ASSERT(error_string.size() == fingerprint.universe,
              "distance: size mismatch");
    if (pruned)
        *pruned = false;

    const std::size_t we = es_weight;
    const std::size_t wf = fingerprint.count;
    if (we == 0 && wf == 0)
        return 0.0;
    if (we == 0 || wf == 0)
        return 1.0;

    const std::uint32_t *pos = fingerprint.positions;
    const std::uint64_t *words = error_string.words().data();

    if (wf <= we) {
        // Footnote-2 roles unchanged: the sparse operand is the
        // fingerprint, d = |fp \ es| counted over the position list
        // with the same early-exit limit as the dense kernel (and
        // the same simd::boundedBlock check granularity on every
        // dispatch level).
        const std::size_t limit = boundedCountLimit(bound, wf);
        const std::size_t d =
            simd::sparseMissCountBounded(words, pos, wf, limit);
        if (d > limit && pruned)
            *pruned = true;
        return static_cast<double>(d) / wf;
    }

    // Swapped roles: the error string plays the fingerprint,
    // d = |es \ fp| = we - |es ∩ fp|. The intersection only ever
    // grows, so we - seen_intersection - remaining_positions is a
    // monotone lower bound on d; the kernel exits at the first
    // block boundary where it clears the limit.
    const std::size_t limit = boundedCountLimit(bound, we);
    const simd::SparseInterScan scan =
        simd::sparseInterCountBounded(words, pos, wf, we, limit);
    if (scan.scanned < wf) {
        if (pruned)
            *pruned = true;
        return static_cast<double>(we - scan.inter -
                                   (wf - scan.scanned)) /
               we;
    }
    // Full scan: the value is exact; it still certifies > bound
    // exactly when the final miss count clears the limit.
    if (we - scan.inter > limit && pruned)
        *pruned = true;
    return static_cast<double>(we - scan.inter) / we;
}

double
modifiedJaccard(const SparseBitset &error_string,
                const SparseBitset &fingerprint)
{
    PC_ASSERT(error_string.universe() == fingerprint.universe(),
              "distance: universe mismatch");

    const std::size_t we = error_string.count();
    const std::size_t wf = fingerprint.count();
    if (we == 0 && wf == 0)
        return 0.0;
    if (we == 0 || wf == 0)
        return 1.0;

    const SparseBitset &fp = (wf <= we) ? fingerprint : error_string;
    const SparseBitset &es = (wf <= we) ? error_string : fingerprint;
    const std::size_t fp_weight = (wf <= we) ? wf : we;

    return static_cast<double>(fp.differenceCount(es)) / fp_weight;
}

double
jaccardDistance(const BitVec &a, const BitVec &b)
{
    PC_ASSERT(a.size() == b.size(), "distance: size mismatch");
    const std::size_t inter = a.overlapCount(b);
    const std::size_t uni = a.popcount() + b.popcount() - inter;
    if (uni == 0)
        return 0.0;
    return 1.0 - static_cast<double>(inter) / uni;
}

double
normalizedHamming(const BitVec &a, const BitVec &b)
{
    PC_ASSERT(a.size() == b.size() && !a.empty(),
              "distance: size mismatch");
    return static_cast<double>(a.hammingDistance(b)) / a.size();
}

double
distance(DistanceMetric metric, const BitVec &a, const BitVec &b)
{
    switch (metric) {
      case DistanceMetric::ModifiedJaccard:
        return modifiedJaccard(a, b);
      case DistanceMetric::Jaccard:
        return jaccardDistance(a, b);
      case DistanceMetric::Hamming:
        return normalizedHamming(a, b);
      default:
        panic("unhandled distance metric");
    }
}

} // namespace pcause
