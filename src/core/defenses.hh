/**
 * @file
 * Defenses against fingerprinting (paper Section 8.2).
 *
 * Three mitigations are modeled so their costs and (partial)
 * effectiveness can be measured: data segregation (8.2.1), noise
 * addition (8.2.2), and page-level address scrambling (8.2.3 — the
 * placement policy lives in os/allocator; the helpers here quantify
 * its effect on stitching).
 */

#ifndef PCAUSE_CORE_DEFENSES_HH
#define PCAUSE_CORE_DEFENSES_HH

#include <cstdint>

#include "util/bitvec.hh"
#include "util/rng.hh"

namespace pcause
{

/**
 * Section 8.2.1 — data segregation: sensitive data is stored in an
 * exactly-refreshed region. Given the approximate output and the
 * exact data, rebuild what the system would publish when bits under
 * @p sensitive_mask are stored exactly.
 *
 * The cost is the resource split the paper criticizes: the
 * sensitive fraction forfeits all refresh-energy savings.
 */
BitVec applySegregation(const BitVec &approx, const BitVec &exact,
                        const BitVec &sensitive_mask);

/** Fraction of refresh-energy saving forfeited by segregation. */
double segregationEnergyCost(const BitVec &sensitive_mask);

/**
 * Section 8.2.2 — noise addition: flip each published bit with
 * probability @p flip_rate. Degrades output quality for the user
 * while only diluting the fingerprint for the attacker ("adding
 * noise only slows the attacker down").
 */
BitVec addNoiseDefense(const BitVec &approx, double flip_rate,
                       Rng &rng);

/**
 * Expected extra output error introduced by the noise defense, for
 * the quality-cost axis of the defense bench.
 */
double noiseQualityCost(double flip_rate);

} // namespace pcause

#endif // PCAUSE_CORE_DEFENSES_HH
