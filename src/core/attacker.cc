#include "core/attacker.hh"

#include <chrono>

#include "core/characterize.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

namespace
{

/** Seconds elapsed since @p start. */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
}

} // anonymous namespace

SupplyChainAttacker::SupplyChainAttacker(const IdentifyParams &params)
    : prm(params)
{
}

std::size_t
SupplyChainAttacker::interceptChip(TestHarness &harness,
                                   const std::string &label,
                                   unsigned num_outputs, double accuracy,
                                   const std::vector<Celsius> &temps)
{
    PC_ASSERT(num_outputs > 0 && !temps.empty(),
              "interceptChip: need outputs and temperatures");

    std::vector<BitVec> outputs;
    outputs.reserve(num_outputs);
    const BitVec exact = harness.chip().worstCasePattern();
    for (unsigned i = 0; i < num_outputs; ++i) {
        TrialSpec spec;
        spec.accuracy = accuracy;
        spec.temp = temps[i % temps.size()];
        spec.trialKey = ++trialCounter;
        outputs.push_back(harness.runWorstCaseTrial(spec).approx);
    }
    const auto start = std::chrono::steady_clock::now();
    Fingerprint fp = workers ? characterize(outputs, exact, *workers)
                             : characterize(outputs, exact);
    counters.characterizeSeconds += secondsSince(start);
    return db.add(label, std::move(fp));
}

IdentifyResult
SupplyChainAttacker::attribute(const BitVec &approx,
                               const BitVec &exact) const
{
    const auto start = std::chrono::steady_clock::now();
    const IdentifyResult res = identify(approx, exact, db, prm);
    counters.identifySeconds += secondsSince(start);
    // Serial Algorithm 2 visits match+1 records in first-match
    // mode, the whole database otherwise.
    counters.distancesComputed +=
        (prm.firstMatch && res.match) ? *res.match + 1 : db.size();
    return res;
}

std::vector<IdentifyResult>
SupplyChainAttacker::attributeBatch(
    const std::vector<BitVec> &approx_outputs,
    const BitVec &exact) const
{
    return identifyBatch(approx_outputs, exact, db, prm, workers,
                         &counters);
}

IdentifyResult
SupplyChainAttacker::attributeWithData(const BitVec &approx,
                                       const BitVec &exact,
                                       const DramConfig &config) const
{
    return identifyWithData(approx, exact, config, db, prm);
}

const std::string &
SupplyChainAttacker::label(std::size_t index) const
{
    return db.record(index).label;
}

EavesdropperAttacker::EavesdropperAttacker(const StitchParams &params)
    : stitch(params)
{
}

void
EavesdropperAttacker::setThreadPool(ThreadPool *pool)
{
    stitch.setThreadPool(pool);
}

std::size_t
EavesdropperAttacker::observe(const ApproximateSample &sample)
{
    const auto start = std::chrono::steady_clock::now();
    const std::size_t id = stitch.addSample(sample.pageErrors);
    counters.ingestSeconds += secondsSince(start);
    counters.pagesProbed = stitch.stats().pagesProbed;
    return id;
}

std::vector<std::size_t>
EavesdropperAttacker::observeBatch(
    const std::vector<ApproximateSample> &samples)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::size_t> ids;
    ids.reserve(samples.size());
    for (const auto &s : samples)
        ids.push_back(stitch.addSample(s.pageErrors));
    counters.ingestSeconds += secondsSince(start);
    counters.pagesProbed = stitch.stats().pagesProbed;
    return ids;
}

std::optional<std::size_t>
EavesdropperAttacker::attribute(const ApproximateSample &sample) const
{
    return stitch.matchSample(sample.pageErrors);
}

std::size_t
EavesdropperAttacker::suspectedMachines() const
{
    return stitch.numSuspectedChips();
}

} // namespace pcause
