#include "core/attacker.hh"

#include "core/characterize.hh"
#include "util/logging.hh"

namespace pcause
{

SupplyChainAttacker::SupplyChainAttacker(const IdentifyParams &params)
    : prm(params)
{
}

std::size_t
SupplyChainAttacker::interceptChip(TestHarness &harness,
                                   const std::string &label,
                                   unsigned num_outputs, double accuracy,
                                   const std::vector<Celsius> &temps)
{
    PC_ASSERT(num_outputs > 0 && !temps.empty(),
              "interceptChip: need outputs and temperatures");

    std::vector<BitVec> outputs;
    outputs.reserve(num_outputs);
    const BitVec exact = harness.chip().worstCasePattern();
    for (unsigned i = 0; i < num_outputs; ++i) {
        TrialSpec spec;
        spec.accuracy = accuracy;
        spec.temp = temps[i % temps.size()];
        spec.trialKey = ++trialCounter;
        outputs.push_back(harness.runWorstCaseTrial(spec).approx);
    }
    return db.add(label, characterize(outputs, exact));
}

IdentifyResult
SupplyChainAttacker::attribute(const BitVec &approx,
                               const BitVec &exact) const
{
    return identify(approx, exact, db, prm);
}

IdentifyResult
SupplyChainAttacker::attributeWithData(const BitVec &approx,
                                       const BitVec &exact,
                                       const DramConfig &config) const
{
    return identifyWithData(approx, exact, config, db, prm);
}

const std::string &
SupplyChainAttacker::label(std::size_t index) const
{
    return db.record(index).label;
}

EavesdropperAttacker::EavesdropperAttacker(const StitchParams &params)
    : stitch(params)
{
}

std::size_t
EavesdropperAttacker::observe(const ApproximateSample &sample)
{
    return stitch.addSample(sample.pageErrors);
}

std::optional<std::size_t>
EavesdropperAttacker::attribute(const ApproximateSample &sample) const
{
    return stitch.matchSample(sample.pageErrors);
}

std::size_t
EavesdropperAttacker::suspectedMachines() const
{
    return stitch.numSuspectedChips();
}

} // namespace pcause
