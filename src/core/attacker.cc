#include "core/attacker.hh"

#include <chrono>

#include "core/characterize.hh"
#include "core/error_string.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

namespace
{

/** Seconds elapsed since @p start. */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
}

} // anonymous namespace

namespace
{

/** The QueryOptions an attacker's IdentifyParams denote. */
QueryOptions
optionsFor(const IdentifyParams &prm)
{
    QueryOptions o;
    o.threshold = prm.threshold;
    o.metric = prm.metric;
    o.firstMatch = prm.firstMatch;
    return o;
}

/** Strip a facade verdict back to the raw result shape. */
IdentifyResult
resultOf(const IdentifyVerdict &v)
{
    IdentifyResult r;
    r.match = v.record;
    r.bestDistance = v.distance;
    r.nearest = v.nearest;
    return r;
}

} // anonymous namespace

SupplyChainAttacker::SupplyChainAttacker(const IdentifyParams &params)
    : prm(params), svc(FingerprintStore{})
{
}

std::size_t
SupplyChainAttacker::interceptChip(TestHarness &harness,
                                   const std::string &label,
                                   unsigned num_outputs, double accuracy,
                                   const std::vector<Celsius> &temps)
{
    PC_ASSERT(num_outputs > 0 && !temps.empty(),
              "interceptChip: need outputs and temperatures");

    std::vector<BitVec> outputs;
    outputs.reserve(num_outputs);
    const BitVec exact = harness.chip().worstCasePattern();
    for (unsigned i = 0; i < num_outputs; ++i) {
        TrialSpec spec;
        spec.accuracy = accuracy;
        spec.temp = temps[i % temps.size()];
        spec.trialKey = ++trialCounter;
        outputs.push_back(harness.runWorstCaseTrial(spec).approx);
    }
    const auto start = std::chrono::steady_clock::now();
    Fingerprint fp = workers ? characterize(outputs, exact, *workers)
                             : characterize(outputs, exact);
    counters.characterizeSeconds += secondsSince(start);
    return svc.addRecord(label, std::move(fp)).record;
}

IdentifyResult
SupplyChainAttacker::attribute(const BitVec &approx,
                               const BitVec &exact) const
{
    IdentifyRequest req;
    req.errorString = errorString(approx, exact);
    req.options = optionsFor(prm);
    return resultOf(svc.identify(req));
}

std::vector<IdentifyResult>
SupplyChainAttacker::attributeBatch(
    const std::vector<BitVec> &approx_outputs,
    const BitVec &exact) const
{
    ThreadPool &pool = workers ? *workers : ThreadPool::global();
    std::vector<BitVec> error_strings(approx_outputs.size());
    pool.parallelFor(0, approx_outputs.size(), [&](std::size_t i) {
        error_strings[i] = errorString(approx_outputs[i], exact);
    });
    std::vector<IdentifyResult> results;
    results.reserve(error_strings.size());
    for (const IdentifyVerdict &v :
         svc.identifyBatch(error_strings, optionsFor(prm)))
        results.push_back(resultOf(v));
    return results;
}

std::vector<IdentifyResult>
SupplyChainAttacker::attributeBatch(
    const std::vector<BitVec> &approx_outputs,
    const std::vector<BitVec> &exact_values) const
{
    PC_ASSERT(approx_outputs.size() == exact_values.size(),
              "attributeBatch: output/exact count mismatch");
    ThreadPool &pool = workers ? *workers : ThreadPool::global();
    std::vector<BitVec> error_strings(approx_outputs.size());
    pool.parallelFor(0, approx_outputs.size(), [&](std::size_t i) {
        error_strings[i] =
            errorString(approx_outputs[i], exact_values[i]);
    });
    std::vector<IdentifyResult> results;
    results.reserve(error_strings.size());
    for (const IdentifyVerdict &v :
         svc.identifyBatch(error_strings, optionsFor(prm)))
        results.push_back(resultOf(v));
    return results;
}

IdentifyResult
SupplyChainAttacker::attributeWithData(const BitVec &approx,
                                       const BitVec &exact,
                                       const DramConfig &config) const
{
    return identifyWithData(approx, exact, config, *svc.db(), prm);
}

const std::string &
SupplyChainAttacker::label(std::size_t index) const
{
    return svc.store()->record(index).label;
}

const AttackStats &
SupplyChainAttacker::stats() const
{
    // Characterization time lives in this object's counters; query
    // counters accumulate inside the facade. Merge on read.
    merged = counters;
    merged += svc.snapshot();
    return merged;
}

EavesdropperAttacker::EavesdropperAttacker(
    const StitchParams &params, const ClusterParams &cluster_params)
    : stitch(params), whole(cluster_params)
{
}

void
EavesdropperAttacker::setThreadPool(ThreadPool *pool)
{
    stitch.setThreadPool(pool);
    whole.setThreadPool(pool);
}

std::size_t
EavesdropperAttacker::observe(const ApproximateSample &sample)
{
    const auto start = std::chrono::steady_clock::now();
    const std::size_t id = stitch.addSample(sample.pageErrors);
    counters.ingestSeconds += secondsSince(start);
    counters.pagesProbed = stitch.stats().pagesProbed;
    return id;
}

std::vector<std::size_t>
EavesdropperAttacker::observeBatch(
    const std::vector<ApproximateSample> &samples)
{
    const auto start = std::chrono::steady_clock::now();
    // Borrow the page vectors rather than copying samples into the
    // vector-of-vectors shape: the stitcher's batch path truncates
    // into its own storage anyway.
    std::vector<const std::vector<SparseBitset> *> borrowed;
    borrowed.reserve(samples.size());
    for (const auto &s : samples)
        borrowed.push_back(&s.pageErrors);
    std::vector<std::size_t> ids = stitch.addSamples(borrowed);
    counters.ingestSeconds += secondsSince(start);
    counters.pagesProbed = stitch.stats().pagesProbed;
    return ids;
}

std::size_t
EavesdropperAttacker::observeErrorString(const BitVec &error_string)
{
    const auto start = std::chrono::steady_clock::now();
    const std::size_t id = whole.addErrorString(error_string);
    counters.ingestSeconds += secondsSince(start);
    return id;
}

std::vector<std::size_t>
EavesdropperAttacker::observeErrorStrings(
    const std::vector<BitVec> &error_strings)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::size_t> ids = whole.addBatch(error_strings);
    counters.ingestSeconds += secondsSince(start);
    return ids;
}

std::optional<std::size_t>
EavesdropperAttacker::attribute(const ApproximateSample &sample) const
{
    const auto start = std::chrono::steady_clock::now();
    const auto match = stitch.matchSample(sample.pageErrors);
    counters.identifySeconds += secondsSince(start);
    return match;
}

std::vector<std::optional<std::size_t>>
EavesdropperAttacker::attributeBatch(
    const std::vector<ApproximateSample> &samples) const
{
    // The Stitcher is externally synchronized, so samples are
    // matched one at a time; each match's page probing fans out
    // across the stitcher's pool internally.
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::optional<std::size_t>> matches;
    matches.reserve(samples.size());
    for (const auto &s : samples)
        matches.push_back(stitch.matchSample(s.pageErrors));
    counters.identifySeconds += secondsSince(start);
    return matches;
}

std::size_t
EavesdropperAttacker::suspectedMachines() const
{
    return stitch.numSuspectedChips();
}

} // namespace pcause
