// The mapped query path is built on the raw sparse kernels.
#define PCAUSE_ALLOW_DEPRECATED_IDENTIFY
#include "core/mapped_store.hh"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

namespace
{

/** Sanity cap on a chip label (matches the stream loader). */
constexpr std::uint32_t maxLabelBytes = 1u << 16;

/** Seconds elapsed since @p start. */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
}

} // anonymous namespace

LoadResult<MappedStore>
MappedStore::open(const std::string &path)
{
    const auto fail = [](std::string why) -> LoadResult<MappedStore> {
        return {std::nullopt, "MappedStore: " + std::move(why)};
    };

    MappedStore ms;
    std::string map_err;
    if (!ms.map.open(path, &map_err))
        return fail(std::move(map_err));

    const std::uint8_t *d = ms.map.data();
    const std::uint64_t len = ms.map.size();
    if (len < pcdb::v3HeaderBytes)
        return fail("file shorter than a v3 header");
    if (std::memcmp(d, pcdb::magic, sizeof(pcdb::magic)) != 0)
        return fail("not a Probable Cause database");
    if (pcdb::loadU32(d + 4) != pcdb::versionV3)
        return fail("not a v3 database (use loadStore for v1/v2)");

    pcdb::V3Header &h = ms.header;
    h.numHashes = pcdb::loadU32(d + 8);
    h.bands = pcdb::loadU32(d + 12);
    h.probes = pcdb::loadU32(d + 16);
    const std::uint32_t reserved = pcdb::loadU32(d + 20);
    h.seed = pcdb::loadU64(d + 24);
    h.recordCount = pcdb::loadU64(d + 32);
    h.totalPositions = pcdb::loadU64(d + 40);
    h.labelBytes = pcdb::loadU64(d + 48);
    h.fileSize = pcdb::loadU64(d + 56);
    h.recordTableOff = pcdb::loadU64(d + 64);
    h.sigOff = pcdb::loadU64(d + 72);
    h.posOff = pcdb::loadU64(d + 80);
    h.labelOff = pcdb::loadU64(d + 88);
    h.lshOff = pcdb::loadU64(d + 96);

    if (h.numHashes == 0 || h.bands == 0 ||
        h.numHashes % h.bands != 0)
        return fail("invalid minhash parameters in header");
    if (reserved != 0)
        return fail("nonzero reserved header field");
    if (h.fileSize != len)
        return fail("header file size does not match the file");

    // Bound every count by what could possibly fit in the mapping
    // before computing the canonical layout, so hostile headers
    // cannot drive the offset arithmetic into 64-bit overflow.
    if (h.recordCount > len / pcdb::v3RecordEntryBytes ||
        h.totalPositions > len / sizeof(std::uint32_t) ||
        h.labelBytes > len)
        return fail("header counts exceed the file size");

    const pcdb::V3Layout lay =
        pcdb::v3Layout(h.recordCount, h.numHashes, h.totalPositions,
                       h.labelBytes, h.bands);
    if (h.recordTableOff != lay.recordTableOff ||
        h.sigOff != lay.sigOff || h.posOff != lay.posOff ||
        h.labelOff != lay.labelOff || h.lshOff != lay.lshOff ||
        h.fileSize != lay.fileSize)
        return fail("non-canonical v3 section layout");

    ms.prm.numHashes = h.numHashes;
    ms.prm.bands = h.bands;
    ms.prm.seed = h.seed;
    ms.prm.probes = h.probes;

    // One pass over the record table: the only per-record work at
    // open. Arena payloads (positions, signatures) stay untouched
    // until a query pages them in.
    std::uint64_t next_label = 0, next_pos = 0;
    for (std::uint64_t i = 0; i < h.recordCount; ++i) {
        const pcdb::V3RecordEntry e = ms.entry(i);
        if (e.labelLen > maxLabelBytes)
            return fail("implausible label length");
        if (e.labelOff != next_label || e.posOff != next_pos ||
            e.reserved != 0)
            return fail("non-canonical record table");
        if (e.sources == 0)
            return fail("record with zero sources");
        if (e.posCount > e.universe)
            return fail("more positions than universe bits");
        next_label += e.labelLen;
        next_pos += e.posCount;
    }
    if (next_label != h.labelBytes)
        return fail("label arena size mismatch");
    if (next_pos != h.totalPositions)
        return fail("position arena size mismatch");

    for (std::uint32_t band = 0; band < h.bands; ++band) {
        if (pcdb::loadU64(ms.bandBase(band)) != h.recordCount)
            return fail("lsh band entry count mismatch");
    }

    return {std::move(ms), ""};
}

pcdb::V3RecordEntry
MappedStore::entry(std::size_t i) const
{
    PC_ASSERT(i < header.recordCount,
              "MappedStore record index out of range");
    const std::uint8_t *p = map.data() + header.recordTableOff +
                            i * pcdb::v3RecordEntryBytes;
    pcdb::V3RecordEntry e;
    e.labelOff = pcdb::loadU64(p);
    e.posOff = pcdb::loadU64(p + 8);
    e.universe = pcdb::loadU64(p + 16);
    e.labelLen = pcdb::loadU32(p + 24);
    e.posCount = pcdb::loadU32(p + 28);
    e.sources = pcdb::loadU32(p + 32);
    e.reserved = pcdb::loadU32(p + 36);
    return e;
}

const std::uint8_t *
MappedStore::bandBase(std::uint32_t band) const
{
    return map.data() + header.lshOff +
           band * pcdb::v3BandBytes(header.recordCount);
}

SparseView
MappedStore::view(std::size_t i) const
{
    const pcdb::V3RecordEntry e = entry(i);
    SparseView v;
    v.positions = reinterpret_cast<const std::uint32_t *>(
        map.data() + header.posOff +
        e.posOff * sizeof(std::uint32_t));
    v.count = e.posCount;
    v.universe = e.universe;
    return v;
}

std::string_view
MappedStore::label(std::size_t i) const
{
    const pcdb::V3RecordEntry e = entry(i);
    return {reinterpret_cast<const char *>(map.data() +
                                           header.labelOff +
                                           e.labelOff),
            e.labelLen};
}

std::uint32_t
MappedStore::sources(std::size_t i) const
{
    return entry(i).sources;
}

MinHashSignature
MappedStore::signature(std::size_t i) const
{
    PC_ASSERT(i < header.recordCount,
              "MappedStore record index out of range");
    MinHashSignature sig(prm.numHashes);
    std::memcpy(sig.data(),
                map.data() + header.sigOff +
                    i * std::uint64_t{prm.numHashes} *
                        sizeof(std::uint32_t),
                prm.numHashes * sizeof(std::uint32_t));
    return sig;
}

std::vector<std::size_t>
MappedStore::candidates(const MinHashSketch &sketch) const
{
    std::vector<std::size_t> out;
    const std::uint64_t n = header.recordCount;
    for (std::uint32_t band = 0; band < prm.bands; ++band) {
        const std::uint8_t *base = bandBase(band);
        const std::uint8_t *keys = base + 8;
        const std::uint8_t *ids = keys + n * 8;
        for (const std::uint64_t key :
             lshProbeKeys(prm, sketch, band)) {
            // lower_bound over the band's sorted key array.
            std::uint64_t lo = 0, hi = n;
            while (lo < hi) {
                const std::uint64_t mid = lo + (hi - lo) / 2;
                if (pcdb::loadU64(keys + mid * 8) < key)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            for (std::uint64_t j = lo;
                 j < n && pcdb::loadU64(keys + j * 8) == key; ++j)
                out.push_back(pcdb::loadU32(ids + j * 4));
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

IdentifyResult
MappedStore::queryImpl(const BitVec &error_string,
                       const IdentifyParams &params,
                       AttackStats *stats) const
{
    PC_ASSERT(params.metric == DistanceMetric::ModifiedJaccard,
              "MappedStore: only the ModifiedJaccard metric is "
              "available on a mapped database");
    if (stats) {
        ++stats->indexQueries;
        stats->recordsAvailable += header.recordCount;
    }

    const MinHashSketch sketch = minhashSketch(error_string, prm);
    const std::vector<std::size_t> cand = candidates(sketch);
    if (stats)
        stats->candidatesScanned += cand.size();

    const std::size_t es_weight = error_string.popcount();
    if (!cand.empty()) {
        const IdentifyResult res = identifySparseAmong(
            error_string, es_weight, *this, cand, params, stats);
        if (res.match)
            return res;
    }

    // Same fallback contract as FingerprintStore::query(): the full
    // scan's verdict is returned verbatim, pinning accept/reject to
    // the linear Algorithm 2.
    if (stats)
        ++stats->indexFallbacks;
    if (workers) {
        return identifySparseParallel(error_string, es_weight, *this,
                                      params, *workers, stats);
    }
    return identifySparseBounded(error_string, es_weight, *this,
                                 params, stats);
}

IdentifyResult
MappedStore::query(const BitVec &error_string,
                   const IdentifyParams &params,
                   AttackStats *stats) const
{
    const auto start = std::chrono::steady_clock::now();
    AttackStats local;
    const IdentifyResult res =
        queryImpl(error_string, params, &local);
    // queryImpl never stamps identify time; one wall stamp here.
    local.identifySeconds = secondsSince(start);
    if (stats)
        *stats += local;
    return res;
}

IdentifyResult
MappedStore::queryLinear(const BitVec &error_string,
                         const IdentifyParams &params,
                         AttackStats *stats) const
{
    const auto start = std::chrono::steady_clock::now();
    AttackStats local;
    const IdentifyResult res = identifySparseBounded(
        error_string, error_string.popcount(), *this, params, &local);
    local.recordsAvailable += header.recordCount;
    local.identifySeconds = secondsSince(start);
    if (stats)
        *stats += local;
    return res;
}

} // namespace pcause
