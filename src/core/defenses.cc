#include "core/defenses.hh"

#include "util/logging.hh"

namespace pcause
{

BitVec
applySegregation(const BitVec &approx, const BitVec &exact,
                 const BitVec &sensitive_mask)
{
    PC_ASSERT(approx.size() == exact.size() &&
              approx.size() == sensitive_mask.size(),
              "applySegregation: size mismatch");
    // published = (exact AND mask) OR (approx AND NOT mask)
    BitVec published = approx;
    for (auto bit : sensitive_mask.setBits())
        published.set(bit, exact.get(bit));
    return published;
}

double
segregationEnergyCost(const BitVec &sensitive_mask)
{
    PC_ASSERT(!sensitive_mask.empty(), "empty segregation mask");
    return static_cast<double>(sensitive_mask.popcount()) /
        sensitive_mask.size();
}

BitVec
addNoiseDefense(const BitVec &approx, double flip_rate, Rng &rng)
{
    PC_ASSERT(flip_rate >= 0.0 && flip_rate <= 1.0,
              "flip_rate out of range");
    BitVec out = approx;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (rng.chance(flip_rate))
            out.set(i, !out.get(i));
    }
    return out;
}

double
noiseQualityCost(double flip_rate)
{
    return flip_rate;
}

} // namespace pcause
