// This TU *is* the deprecated surface.
#define PCAUSE_ALLOW_DEPRECATED_IDENTIFY
#include "core/identify.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/error_string.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

std::size_t
FingerprintDb::add(ChipLabel label, Fingerprint fp)
{
    records.push_back({std::move(label), std::move(fp)});
    return records.size() - 1;
}

const FingerprintRecord &
FingerprintDb::record(std::size_t i) const
{
    PC_ASSERT(i < records.size(), "FingerprintDb index out of range");
    return records[i];
}

FingerprintRecord &
FingerprintDb::record(std::size_t i)
{
    PC_ASSERT(i < records.size(), "FingerprintDb index out of range");
    return records[i];
}

namespace
{

/** Wall-clock scope timer accumulating into an AttackStats field. */
class PhaseTimer
{
  public:
    PhaseTimer(AttackStats *stats, double AttackStats::*field)
        : out(stats), member(field),
          start(std::chrono::steady_clock::now())
    {
    }

    ~PhaseTimer()
    {
        if (out) {
            out->*member += std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start).count();
        }
    }

  private:
    AttackStats *out;
    double AttackStats::*member;
    std::chrono::steady_clock::time_point start;
};

/** What one contiguous database shard learned. */
struct ScanOutcome
{
    /** Lowest record index under threshold, with its distance. */
    std::optional<std::size_t> match;
    double matchDist = 1.0;

    /** First record achieving the shard's minimum distance. */
    std::optional<std::size_t> nearest;
    double nearestDist = 1.0;

    /** Whether any distance fell under the threshold. */
    bool anyUnderThreshold = false;

    std::uint64_t computed = 0;
    std::uint64_t pruned = 0;
};

/**
 * Distance with the metric-appropriate kernel: the bounded
 * Algorithm 3 scan when the metric supports it, the plain metric
 * otherwise.
 */
double
boundedDistance(const IdentifyParams &params, const BitVec &es,
                std::size_t es_weight, const BitVec &fp, double bound,
                bool *pruned)
{
    if (params.metric == DistanceMetric::ModifiedJaccard)
        return modifiedJaccardBounded(es, es_weight, fp, bound,
                                      pruned);
    *pruned = false;
    return distance(params.metric, es, fp);
}

/**
 * Scan records [begin, end) exactly as serial identify() visits
 * them, but through a bounded kernel @p distAt(i, bound, &pruned).
 * The bound is max(threshold, running best distance): any distance
 * the serial code would compare against the threshold or use to
 * update the running minimum is therefore computed exactly, and a
 * pruned evaluation returns a lower bound already above both, so
 * verdicts and reported distances match the unbounded scan bit for
 * bit — for every kernel (dense or sparse) honoring that contract.
 *
 * @p earliest_match, when non-null (first-match mode, sharded
 * scan), carries the lowest match index found by any shard; shards
 * whose remaining records all sit above it stop scanning, and a
 * shard finding a match publishes it.
 */
template <typename DistAt>
ScanOutcome
scanRangeT(std::size_t begin, std::size_t end,
           const IdentifyParams &params,
           std::atomic<std::size_t> *earliest_match,
           const DistAt &distAt)
{
    ScanOutcome out;
    for (std::size_t i = begin; i < end; ++i) {
        if (earliest_match &&
            earliest_match->load(std::memory_order_relaxed) < i)
            break;
        const double bound =
            std::max(params.threshold,
                     out.nearest ? out.nearestDist : 1.0);
        bool pruned = false;
        const double d = distAt(i, bound, &pruned);
        ++(pruned ? out.pruned : out.computed);
        if (!out.nearest || d < out.nearestDist) {
            out.nearest = i;
            out.nearestDist = d;
        }
        if (d < params.threshold) {
            out.anyUnderThreshold = true;
            if (!out.match) {
                out.match = i;
                out.matchDist = d;
            }
            if (params.firstMatch) {
                if (earliest_match) {
                    std::size_t cur = earliest_match->load(
                        std::memory_order_relaxed);
                    while (i < cur &&
                           !earliest_match->compare_exchange_weak(
                               cur, i, std::memory_order_relaxed)) {
                    }
                }
                break;
            }
        }
    }
    return out;
}

/**
 * scanRangeT() over an explicit index list instead of a contiguous
 * range: visits @p candidates in order through the bounded kernel
 * with the same bound policy, so verdicts match a serial scan of a
 * database containing exactly those records in that order.
 */
template <typename DistAt>
ScanOutcome
scanIndicesT(const std::vector<std::size_t> &candidates,
             const IdentifyParams &params, const DistAt &distAt)
{
    ScanOutcome out;
    for (const std::size_t i : candidates) {
        const double bound =
            std::max(params.threshold,
                     out.nearest ? out.nearestDist : 1.0);
        bool pruned = false;
        const double d = distAt(i, bound, &pruned);
        ++(pruned ? out.pruned : out.computed);
        if (!out.nearest || d < out.nearestDist) {
            out.nearest = i;
            out.nearestDist = d;
        }
        if (d < params.threshold) {
            out.anyUnderThreshold = true;
            if (!out.match) {
                out.match = i;
                out.matchDist = d;
            }
            if (params.firstMatch)
                break;
        }
    }
    return out;
}

/**
 * Dense bounded kernel bound to a FingerprintDb record. The query
 * operand's popcount is hashed once at construction, not once per
 * candidate (mirroring SparseDistAt).
 */
struct DenseDistAt
{
    const BitVec &es;
    std::size_t esWeight;
    const FingerprintDb &db;
    const IdentifyParams &params;

    DenseDistAt(const BitVec &es_, const FingerprintDb &db_,
                const IdentifyParams &params_)
        : DenseDistAt(es_, es_.popcount(), db_, params_)
    {
    }

    DenseDistAt(const BitVec &es_, std::size_t es_weight,
                const FingerprintDb &db_,
                const IdentifyParams &params_)
        : es(es_), esWeight(es_weight), db(db_), params(params_)
    {
    }

    double operator()(std::size_t i, double bound,
                      bool *pruned) const
    {
        return boundedDistance(params, es, esWeight,
                               db.record(i).fingerprint.bits(),
                               bound, pruned);
    }
};

/** Sparse Algorithm 3 kernel bound to a position-arena record. */
struct SparseDistAt
{
    const BitVec &es;
    std::size_t esWeight;
    const SparseFingerprintSource &fps;

    double operator()(std::size_t i, double bound,
                      bool *pruned) const
    {
        return modifiedJaccardSparseBounded(es, esWeight,
                                            fps.view(i), bound,
                                            pruned);
    }
};

ScanOutcome
scanShard(const BitVec &es, const FingerprintDb &db,
          std::size_t begin, std::size_t end,
          const IdentifyParams &params,
          std::atomic<std::size_t> *earliest_match)
{
    return scanRangeT(begin, end, params, earliest_match,
                      DenseDistAt{es, db, params});
}

/** Convert a whole-range ScanOutcome to the Algorithm 2 result. */
IdentifyResult
outcomeToResult(const ScanOutcome &out, const IdentifyParams &params)
{
    IdentifyResult res;
    if (params.firstMatch && out.match) {
        // Algorithm 2 line 4: the first hit is the verdict.
        res.match = out.match;
        res.nearest = out.match;
        res.bestDistance = out.matchDist;
        return res;
    }
    res.nearest = out.nearest;
    if (out.nearest)
        res.bestDistance = out.nearestDist;
    if (out.anyUnderThreshold)
        res.match = res.nearest;
    return res;
}

void
mergeScanCounters(AttackStats *stats, const ScanOutcome &out)
{
    if (stats) {
        stats->distancesComputed += out.computed;
        stats->distancesPruned += out.pruned;
    }
}

/**
 * Sharded full scan over records [0, n) with any bounded kernel:
 * the parallel core of identifyErrorStringParallel() /
 * identifySparseParallel(). Performs no timing of its own — public
 * entry points stamp wall time exactly once.
 */
template <typename DistAt>
IdentifyResult
parallelScanT(std::size_t n, const IdentifyParams &params,
              ThreadPool &pool, AttackStats *stats,
              const DistAt &distAt)
{
    // Sharding overhead beats the scan itself on tiny databases.
    if (pool.size() == 1 || n < 2 * pool.size()) {
        const ScanOutcome out =
            scanRangeT(0, n, params, nullptr, distAt);
        mergeScanCounters(stats, out);
        return outcomeToResult(out, params);
    }

    std::vector<ScanOutcome> shards(pool.size());
    std::atomic<std::size_t> earliest(
        std::numeric_limits<std::size_t>::max());
    pool.parallelChunks(
        0, n,
        [&](std::size_t b, std::size_t e, std::size_t c) {
            shards[c] = scanRangeT(b, e, params,
                                   params.firstMatch ? &earliest
                                                     : nullptr,
                                   distAt);
        });

    for (const auto &s : shards)
        mergeScanCounters(stats, s);

    if (params.firstMatch) {
        // Shards cover ascending index ranges; records below the
        // first shard-local match were all scanned and missed, so
        // the lowest shard's match is exactly serial line 4's hit.
        for (const auto &s : shards) {
            if (s.match) {
                IdentifyResult res;
                res.match = s.match;
                res.nearest = s.match;
                res.bestDistance = s.matchDist;
                return res;
            }
        }
    }

    // Merge shard minima in ascending order with a strict compare,
    // reproducing the serial "first record achieving the minimum".
    ScanOutcome merged;
    for (const auto &s : shards) {
        if (s.nearest &&
            (!merged.nearest || s.nearestDist < merged.nearestDist)) {
            merged.nearest = s.nearest;
            merged.nearestDist = s.nearestDist;
        }
        merged.anyUnderThreshold |= s.anyUnderThreshold;
    }
    return outcomeToResult(merged, params);
}

} // anonymous namespace

IdentifyResult
identifyErrorString(const BitVec &error_string, const FingerprintDb &db,
                    const IdentifyParams &params)
{
    IdentifyResult res;
    for (std::size_t i = 0; i < db.size(); ++i) {
        const double d = distance(params.metric, error_string,
                                  db.record(i).fingerprint.bits());
        if (!res.nearest || d < res.bestDistance) {
            res.nearest = i;
            res.bestDistance = d;
        }
        if (d < params.threshold) {
            if (params.firstMatch) {
                // Algorithm 2 line 4: return the first hit.
                res.match = i;
                res.bestDistance = d;
                res.nearest = i;
                return res;
            }
            res.match = res.nearest;
        }
    }
    if (res.match)
        res.match = res.nearest;
    return res;
}

IdentifyResult
identify(const BitVec &approx, const BitVec &exact,
         const FingerprintDb &db, const IdentifyParams &params)
{
    return identifyErrorString(errorString(approx, exact), db, params);
}

IdentifyResult
identifyWithData(const BitVec &approx, const BitVec &exact,
                 const DramConfig &config, const FingerprintDb &db,
                 const IdentifyParams &params)
{
    const BitVec es = errorString(approx, exact);
    const BitVec mask = maskableCells(exact, config);

    IdentifyResult res;
    for (std::size_t i = 0; i < db.size(); ++i) {
        const BitVec masked_fp =
            db.record(i).fingerprint.bits() & mask;
        if (masked_fp.none()) {
            // The data charges none of this fingerprint's cells:
            // the output carries no evidence about this chip either
            // way, so it must not match (an empty-vs-empty compare
            // would report distance zero).
            continue;
        }
        const double d = distance(params.metric, es, masked_fp);
        if (!res.nearest || d < res.bestDistance) {
            res.nearest = i;
            res.bestDistance = d;
        }
        if (d < params.threshold) {
            if (params.firstMatch) {
                res.match = i;
                res.bestDistance = d;
                res.nearest = i;
                return res;
            }
            res.match = res.nearest;
        }
    }
    if (res.match)
        res.match = res.nearest;
    return res;
}

IdentifyResult
identifyAmong(const BitVec &error_string, const FingerprintDb &db,
              const std::vector<std::size_t> &candidates,
              const IdentifyParams &params, AttackStats *stats)
{
    return identifyAmong(error_string, error_string.popcount(), db,
                         candidates, params, stats);
}

IdentifyResult
identifyAmong(const BitVec &error_string, std::size_t es_weight,
              const FingerprintDb &db,
              const std::vector<std::size_t> &candidates,
              const IdentifyParams &params, AttackStats *stats)
{
    const ScanOutcome out = scanIndicesT(
        candidates, params,
        DenseDistAt{error_string, es_weight, db, params});
    mergeScanCounters(stats, out);
    return outcomeToResult(out, params);
}

IdentifyResult
identifySparseAmong(const BitVec &error_string, std::size_t es_weight,
                    const SparseFingerprintSource &fps,
                    const std::vector<std::size_t> &candidates,
                    const IdentifyParams &params, AttackStats *stats)
{
    PC_ASSERT(params.metric == DistanceMetric::ModifiedJaccard,
              "identifySparseAmong: sparse kernel is ModifiedJaccard "
              "only");
    const ScanOutcome out = scanIndicesT(
        candidates, params,
        SparseDistAt{error_string, es_weight, fps});
    mergeScanCounters(stats, out);
    return outcomeToResult(out, params);
}

IdentifyResult
identifySparseBounded(const BitVec &error_string,
                      std::size_t es_weight,
                      const SparseFingerprintSource &fps,
                      const IdentifyParams &params, AttackStats *stats)
{
    PC_ASSERT(params.metric == DistanceMetric::ModifiedJaccard,
              "identifySparseBounded: sparse kernel is "
              "ModifiedJaccard only");
    const ScanOutcome out =
        scanRangeT(0, fps.count(), params, nullptr,
                   SparseDistAt{error_string, es_weight, fps});
    mergeScanCounters(stats, out);
    return outcomeToResult(out, params);
}

IdentifyResult
identifySparseParallel(const BitVec &error_string,
                       std::size_t es_weight,
                       const SparseFingerprintSource &fps,
                       const IdentifyParams &params, ThreadPool &pool,
                       AttackStats *stats)
{
    PC_ASSERT(params.metric == DistanceMetric::ModifiedJaccard,
              "identifySparseParallel: sparse kernel is "
              "ModifiedJaccard only");
    return parallelScanT(fps.count(), params, pool, stats,
                         SparseDistAt{error_string, es_weight, fps});
}

IdentifyResult
identifyErrorStringBounded(const BitVec &error_string,
                           const FingerprintDb &db,
                           const IdentifyParams &params,
                           AttackStats *stats)
{
    const ScanOutcome out =
        scanShard(error_string, db, 0, db.size(), params, nullptr);
    mergeScanCounters(stats, out);
    return outcomeToResult(out, params);
}

IdentifyResult
identifyErrorStringParallel(const BitVec &error_string,
                            const FingerprintDb &db,
                            const IdentifyParams &params,
                            ThreadPool &pool, AttackStats *stats)
{
    PhaseTimer timer(stats, &AttackStats::identifySeconds);
    return parallelScanT(db.size(), params, pool, stats,
                         DenseDistAt{error_string, db, params});
}

std::vector<IdentifyResult>
identifyErrorStringBatch(const std::vector<BitVec> &error_strings,
                         const FingerprintDb &db,
                         const IdentifyParams &params,
                         ThreadPool *pool, AttackStats *stats)
{
    if (!pool)
        pool = &ThreadPool::global();
    std::vector<IdentifyResult> results(error_strings.size());
    if (error_strings.empty())
        return results;

    // Few queries: shard the database scan itself. Many queries:
    // queries are independent, so spread them across the pool and
    // keep each scan serial (better locality, no merge step).
    if (error_strings.size() < pool->size()) {
        for (std::size_t q = 0; q < error_strings.size(); ++q) {
            results[q] = identifyErrorStringParallel(
                error_strings[q], db, params, *pool, stats);
        }
        return results;
    }

    PhaseTimer timer(stats, &AttackStats::identifySeconds);
    std::vector<ScanOutcome> totals(pool->size());
    pool->parallelChunks(
        0, error_strings.size(),
        [&](std::size_t b, std::size_t e, std::size_t c) {
            for (std::size_t q = b; q < e; ++q) {
                const ScanOutcome out = scanShard(
                    error_strings[q], db, 0, db.size(), params,
                    nullptr);
                results[q] = outcomeToResult(out, params);
                totals[c].computed += out.computed;
                totals[c].pruned += out.pruned;
            }
        });
    for (const auto &t : totals)
        mergeScanCounters(stats, t);
    return results;
}

std::vector<IdentifyResult>
identifyBatch(const std::vector<BitVec> &approx_outputs,
              const std::vector<BitVec> &exact_values,
              const FingerprintDb &db, const IdentifyParams &params,
              ThreadPool *pool, AttackStats *stats)
{
    PC_ASSERT(approx_outputs.size() == exact_values.size(),
              "identifyBatch: output/exact count mismatch");
    if (!pool)
        pool = &ThreadPool::global();
    std::vector<BitVec> error_strings(approx_outputs.size());
    pool->parallelFor(0, approx_outputs.size(), [&](std::size_t i) {
        error_strings[i] =
            errorString(approx_outputs[i], exact_values[i]);
    });
    return identifyErrorStringBatch(error_strings, db, params, pool,
                                    stats);
}

double
calibrateThreshold(const std::vector<double> &within_class,
                   const std::vector<double> &between_class)
{
    PC_ASSERT(!within_class.empty() && !between_class.empty(),
              "calibrateThreshold: need both classes");
    const double w_max =
        *std::max_element(within_class.begin(), within_class.end());
    const double b_min =
        *std::min_element(between_class.begin(), between_class.end());
    if (w_max < b_min) {
        // Separable: geometric midpoint keeps equal multiplicative
        // margin on both sides; guard the degenerate all-zero
        // within-class case.
        const double w_floor = std::max(w_max, 1e-9);
        return std::sqrt(w_floor * b_min);
    }

    // Overlapping classes (e.g. under a strong defense): no
    // threshold is clean, so return the one minimizing pooled
    // misclassifications — within-class samples at distance >= t
    // are missed matches, between-class samples at distance < t are
    // spurious matches. The error count is constant between
    // adjacent pooled values, so candidate thresholds are each
    // distinct pooled value plus one sentinel above the maximum.
    std::vector<double> candidates;
    candidates.reserve(within_class.size() + between_class.size() + 1);
    candidates.insert(candidates.end(), within_class.begin(),
                      within_class.end());
    candidates.insert(candidates.end(), between_class.begin(),
                      between_class.end());
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    candidates.push_back(candidates.back() * 2.0 + 1e-9);

    const auto errorsAt = [&](double t) {
        std::size_t errors = 0;
        for (double w : within_class)
            errors += w >= t;
        for (double b : between_class)
            errors += b < t;
        return errors;
    };

    double best_t = candidates.front();
    std::size_t best_errors = std::numeric_limits<std::size_t>::max();
    for (std::size_t k = 0; k < candidates.size(); ++k) {
        const std::size_t errors = errorsAt(candidates[k]);
        if (errors < best_errors) {
            best_errors = errors;
            // Any threshold in (previous value, candidate] yields
            // the same classification; report the midpoint of that
            // interval (geometric when possible, mirroring the
            // separable case) so the choice is not razor-edged.
            if (k == 0) {
                best_t = candidates[k];
            } else {
                const double lo = candidates[k - 1];
                const double hi = candidates[k];
                best_t = lo > 0.0 ? std::sqrt(lo * hi)
                                  : 0.5 * (lo + hi);
            }
        }
    }
    warn("calibrateThreshold: classes overlap (within max %.4f >= "
         "between min %.4f); best-effort threshold %.4f "
         "misclassifies %zu of %zu pooled samples",
         w_max, b_min, best_t, best_errors,
         within_class.size() + between_class.size());
    return best_t;
}

} // namespace pcause
