#include "core/identify.hh"

#include <algorithm>
#include <cmath>

#include "core/error_string.hh"
#include "util/logging.hh"

namespace pcause
{

std::size_t
FingerprintDb::add(ChipLabel label, Fingerprint fp)
{
    records.push_back({std::move(label), std::move(fp)});
    return records.size() - 1;
}

const FingerprintRecord &
FingerprintDb::record(std::size_t i) const
{
    PC_ASSERT(i < records.size(), "FingerprintDb index out of range");
    return records[i];
}

FingerprintRecord &
FingerprintDb::record(std::size_t i)
{
    PC_ASSERT(i < records.size(), "FingerprintDb index out of range");
    return records[i];
}

IdentifyResult
identifyErrorString(const BitVec &error_string, const FingerprintDb &db,
                    const IdentifyParams &params)
{
    IdentifyResult res;
    for (std::size_t i = 0; i < db.size(); ++i) {
        const double d = distance(params.metric, error_string,
                                  db.record(i).fingerprint.bits());
        if (!res.nearest || d < res.bestDistance) {
            res.nearest = i;
            res.bestDistance = d;
        }
        if (d < params.threshold) {
            if (params.firstMatch) {
                // Algorithm 2 line 4: return the first hit.
                res.match = i;
                res.bestDistance = d;
                res.nearest = i;
                return res;
            }
            res.match = res.nearest;
        }
    }
    if (res.match)
        res.match = res.nearest;
    return res;
}

IdentifyResult
identify(const BitVec &approx, const BitVec &exact,
         const FingerprintDb &db, const IdentifyParams &params)
{
    return identifyErrorString(errorString(approx, exact), db, params);
}

IdentifyResult
identifyWithData(const BitVec &approx, const BitVec &exact,
                 const DramConfig &config, const FingerprintDb &db,
                 const IdentifyParams &params)
{
    const BitVec es = errorString(approx, exact);
    const BitVec mask = maskableCells(exact, config);

    IdentifyResult res;
    for (std::size_t i = 0; i < db.size(); ++i) {
        const BitVec masked_fp =
            db.record(i).fingerprint.bits() & mask;
        if (masked_fp.none()) {
            // The data charges none of this fingerprint's cells:
            // the output carries no evidence about this chip either
            // way, so it must not match (an empty-vs-empty compare
            // would report distance zero).
            continue;
        }
        const double d = distance(params.metric, es, masked_fp);
        if (!res.nearest || d < res.bestDistance) {
            res.nearest = i;
            res.bestDistance = d;
        }
        if (d < params.threshold) {
            if (params.firstMatch) {
                res.match = i;
                res.bestDistance = d;
                res.nearest = i;
                return res;
            }
            res.match = res.nearest;
        }
    }
    if (res.match)
        res.match = res.nearest;
    return res;
}

double
calibrateThreshold(const std::vector<double> &within_class,
                   const std::vector<double> &between_class)
{
    PC_ASSERT(!within_class.empty() && !between_class.empty(),
              "calibrateThreshold: need both classes");
    const double w_max =
        *std::max_element(within_class.begin(), within_class.end());
    const double b_min =
        *std::min_element(between_class.begin(), between_class.end());
    if (w_max >= b_min)
        fatal("calibrateThreshold: classes overlap (within max %.4f >= "
              "between min %.4f)", w_max, b_min);
    // Geometric midpoint keeps equal multiplicative margin on both
    // sides; guard the degenerate all-zero within-class case.
    const double w_floor = std::max(w_max, 1e-9);
    return std::sqrt(w_floor * b_min);
}

} // namespace pcause
