#include "core/characterize.hh"

#include "core/error_string.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

namespace
{

/**
 * Tree-wise parallel intersection of error strings; @p exact_of
 * maps a result index to its exact value. The identity of AND is
 * the all-ones vector.
 */
template <typename ExactOf>
Fingerprint
characterizeParallel(const std::vector<BitVec> &approx_results,
                     ExactOf exact_of, ThreadPool &pool)
{
    PC_ASSERT(!approx_results.empty(),
              "characterize: need at least one result");
    const std::size_t size = exact_of(0).size();
    BitVec pattern = pool.parallelReduce(
        std::size_t{0}, approx_results.size(), BitVec(size, true),
        [&](std::size_t i) {
            return errorString(approx_results[i], exact_of(i));
        },
        [](BitVec a, const BitVec &b) {
            a &= b;
            return a;
        });
    return Fingerprint(std::move(pattern),
                       static_cast<unsigned>(approx_results.size()));
}

} // anonymous namespace

Fingerprint
characterize(const std::vector<BitVec> &approx_results,
             const BitVec &exact)
{
    PC_ASSERT(!approx_results.empty(),
              "characterize: need at least one result");
    Fingerprint fp;
    for (const auto &approx : approx_results)
        fp.augment(errorString(approx, exact));
    return fp;
}

Fingerprint
characterize(const std::vector<BitVec> &approx_results,
             const std::vector<BitVec> &exact_values)
{
    PC_ASSERT(approx_results.size() == exact_values.size(),
              "characterize: result/exact count mismatch");
    PC_ASSERT(!approx_results.empty(),
              "characterize: need at least one result");
    Fingerprint fp;
    for (std::size_t i = 0; i < approx_results.size(); ++i)
        fp.augment(errorString(approx_results[i], exact_values[i]));
    return fp;
}

Fingerprint
characterize(const std::vector<BitVec> &approx_results,
             const BitVec &exact, ThreadPool &pool)
{
    return characterizeParallel(
        approx_results,
        [&](std::size_t) -> const BitVec & { return exact; }, pool);
}

Fingerprint
characterize(const std::vector<BitVec> &approx_results,
             const std::vector<BitVec> &exact_values,
             ThreadPool &pool)
{
    PC_ASSERT(approx_results.size() == exact_values.size(),
              "characterize: result/exact count mismatch");
    return characterizeParallel(
        approx_results,
        [&](std::size_t i) -> const BitVec & {
            return exact_values[i];
        },
        pool);
}

} // namespace pcause
