#include "core/characterize.hh"

#include "core/error_string.hh"
#include "util/logging.hh"

namespace pcause
{

Fingerprint
characterize(const std::vector<BitVec> &approx_results,
             const BitVec &exact)
{
    PC_ASSERT(!approx_results.empty(),
              "characterize: need at least one result");
    Fingerprint fp;
    for (const auto &approx : approx_results)
        fp.augment(errorString(approx, exact));
    return fp;
}

Fingerprint
characterize(const std::vector<BitVec> &approx_results,
             const std::vector<BitVec> &exact_values)
{
    PC_ASSERT(approx_results.size() == exact_values.size(),
              "characterize: result/exact count mismatch");
    PC_ASSERT(!approx_results.empty(),
              "characterize: need at least one result");
    Fingerprint fp;
    for (std::size_t i = 0; i < approx_results.size(); ++i)
        fp.augment(errorString(approx_results[i], exact_values[i]));
    return fp;
}

} // namespace pcause
