/**
 * @file
 * Deterministic fleet-campaign synthesis for eavesdropper-scale
 * clustering runs.
 *
 * A campaign is a stream of approximate-output error strings from a
 * fleet of simulated chips: every chip has a stable volatile-cell
 * set (its fingerprint-to-be) and each output keeps most of that set
 * plus a few spurious decayed cells — the Section 3 eavesdropper's
 * view. Everything is a pure counter-based function of
 * (CampaignSpec, index), in the style of the decay engine's per-cell
 * RNG: output i can be synthesized in any order, in parallel, and
 * without materializing the rest of the stream, which is what lets
 * the bench driver and `pcause cluster` stream millions of outputs
 * through the clusterer in fixed memory.
 *
 * This lives in core (not the test-only pc_testing library) because
 * production binaries — the CLI's campaign mode, the bench drivers —
 * stream from it; the pcheck generators wrap it for the property
 * suites.
 */

#ifndef PCAUSE_CORE_CAMPAIGN_HH
#define PCAUSE_CORE_CAMPAIGN_HH

#include <cstdint>

#include "util/bitvec.hh"

namespace pcause
{

/** Shape of a synthetic eavesdropper campaign. */
struct CampaignSpec
{
    /** Fleet size (distinct chips behind the stream). */
    std::size_t chips = 1000;

    /** Stream length (total observed outputs). */
    std::uint64_t outputs = 100000;

    /** Error-string universe (bits per output). */
    std::size_t universeBits = 8192;

    /** Volatile cells per chip (approximate; drawn with
     *  replacement, like the perf_index populations). */
    std::size_t fingerprintWeight = 256;

    /**
     * Per-output survival probability of each volatile cell. High
     * retention keeps a cluster's intersected fingerprint large even
     * after ~100 observations (0.997^100 ~ 0.74), which is the
     * regime where within-chip distances stay two decades under the
     * 0.1 threshold and cross-chip distances near 1.
     */
    double keep = 0.997;

    /** Max spurious decayed cells added per output. */
    std::size_t extraMax = 8;

    /** Campaign seed; all synthesis derives from it. */
    std::uint64_t seed = 0x666c656574ull; // "fleet"
};

/** Chip behind output @p index — a uniform counter-based draw. */
std::size_t campaignChipOf(const CampaignSpec &spec,
                           std::uint64_t index);

/** Chip @p chip's volatile-cell set (pure in (spec, chip)). */
BitVec campaignChipBase(const CampaignSpec &spec, std::size_t chip);

/**
 * Output @p index's error string given its chip's precomputed
 * @p base (callers streaming many outputs cache the bases): each
 * base bit survives with probability spec.keep and up to
 * spec.extraMax spurious bits are added, all keyed by @p index.
 */
BitVec campaignObservation(const CampaignSpec &spec, const BitVec &base,
                           std::uint64_t index);

/** Output @p index's error string, synthesizing the chip base on
 *  the fly — campaignObservation(spec, campaignChipBase(...), i). */
BitVec campaignOutput(const CampaignSpec &spec, std::uint64_t index);

} // namespace pcause

#endif // PCAUSE_CORE_CAMPAIGN_HH
