#include "dram/approx_memory.hh"

#include "util/logging.hh"

namespace pcause
{

ApproxMemory::ApproxMemory(DramChip &chip, double accuracy, Celsius t)
    : dev(chip), controller(accuracy), temp(t)
{
}

void
ApproxMemory::setAccuracy(double accuracy)
{
    controller = RefreshController(accuracy);
}

void
ApproxMemory::setTemperature(Celsius t)
{
    temp = t;
}

Seconds
ApproxMemory::refreshInterval() const
{
    return controller.analyticInterval(dev.retention(), temp);
}

double
ApproxMemory::refreshEnergySavingFactor() const
{
    return refreshInterval() / jedecRefreshPeriod;
}

void
ApproxMemory::store(const BitVec &data)
{
    dev.write(data);
}

BitVec
ApproxMemory::load()
{
    dev.elapse(refreshInterval(), temp);
    BitVec out = dev.peek();
    dev.refreshAll();
    return out;
}

BitVec
ApproxMemory::roundTrip(const BitVec &data, std::uint64_t trial_key)
{
    dev.reseedTrial(trial_key);
    store(data);
    return load();
}

} // namespace pcause
