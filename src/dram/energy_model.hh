/**
 * @file
 * Refresh-energy accounting.
 *
 * Approximate DRAM exists to save energy; this model quantifies the
 * saving so the benches can put the privacy loss on the same axis
 * (the trade-off the paper's conclusion argues must become a design
 * criterion). Refresh power scales with refresh rate; background
 * (non-refresh) power is a fixed floor. Undervolted operation
 * additionally scales everything by V^2.
 */

#ifndef PCAUSE_DRAM_ENERGY_MODEL_HH
#define PCAUSE_DRAM_ENERGY_MODEL_HH

#include "util/units.hh"

namespace pcause
{

class RetentionModel;

/** Power parameters of a DRAM device (relative units). */
struct EnergyParams
{
    /**
     * Fraction of total device power spent on refresh at the JEDEC
     * 64 ms period. Mobile-DRAM datasheets put self-refresh in the
     * tens of percent of standby power; 0.4 is a representative
     * midpoint for the class of devices the paper targets.
     */
    double refreshShareAtJedec = 0.4;

    /** Nominal rail voltage (for the voltage-knob variant). */
    double nominalVolts = 5.0;
};

/** Energy accounting for one operating point. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {});

    /**
     * Relative total power when refreshing every @p interval at
     * nominal voltage: background share plus refresh share scaled
     * by rate (1.0 at the JEDEC period).
     */
    double relativePower(Seconds interval) const;

    /**
     * Relative total power with the voltage knob: JEDEC refresh
     * rate but the rail at @p volts (power scales with V^2).
     */
    double relativePowerVoltage(double volts) const;

    /**
     * Fraction of total device energy saved by refreshing every
     * @p interval instead of the JEDEC period.
     */
    double savingFraction(Seconds interval) const;

    /**
     * Refresh interval that achieves a target worst-case accuracy
     * on @p model at @p temp, for convenience when sweeping
     * accuracy-versus-energy curves.
     */
    Seconds intervalForAccuracy(const RetentionModel &model,
                                double accuracy, Celsius temp) const;

  private:
    EnergyParams prm;
};

} // namespace pcause

#endif // PCAUSE_DRAM_ENERGY_MODEL_HH
