#include "dram/dram_chip.hh"

#include "util/logging.hh"

namespace pcause
{

DramChip::DramChip(const DramConfig &config, std::uint64_t chip_seed)
    : cfg(config),
      model(config, chip_seed),
      stored(config.totalBits()),
      dead(config.totalBits()),
      effRet(config.totalBits(), 0.0f),
      stress(config.rows, 0.0),
      trialRng(mix64(chip_seed, 0x74726961 /* "tria" */))
{
    // A powered-up chip holds every cell at its default value.
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        if (cfg.defaultBit(row)) {
            for (std::size_t i = 0; i < cfg.rowBits(); ++i)
                stored.set(row * cfg.rowBits() + i);
        }
    }
}

void
DramChip::reseedTrial(std::uint64_t trial_key)
{
    trialRng = Rng(mix64(model.chipSeed(), trial_key));
}

void
DramChip::materializeDecay(std::size_t row)
{
    const double s = stress[row];
    if (s <= 0.0)
        return;
    const std::size_t begin = row * cfg.rowBits();
    const std::size_t end = begin + cfg.rowBits();
    for (std::size_t cell = begin; cell < end; ++cell) {
        if (isCharged(cell) && s >= effRet[cell])
            dead.set(cell);
    }
}

void
DramChip::rechargeRow(std::size_t row)
{
    stress[row] = 0.0;
    const std::size_t begin = row * cfg.rowBits();
    const std::size_t end = begin + cfg.rowBits();
    for (std::size_t cell = begin; cell < end; ++cell) {
        if (isCharged(cell))
            effRet[cell] = static_cast<float>(
                model.sampleEffective(cell, trialRng));
    }
}

void
DramChip::write(const BitVec &data)
{
    PC_ASSERT(data.size() == size(), "write size mismatch");
    stored = data;
    dead.fill(false);
    for (std::size_t row = 0; row < cfg.rows; ++row)
        rechargeRow(row);
}

void
DramChip::writeRegion(std::size_t start, const BitVec &data)
{
    PC_ASSERT(start + data.size() <= size(),
              "writeRegion out of range");
    if (data.empty())
        return;

    const std::size_t first_row = rowOf(start);
    const std::size_t last_row = rowOf(start + data.size() - 1);

    // The row read phase folds decay into untouched cells first.
    for (std::size_t row = first_row; row <= last_row; ++row)
        materializeDecay(row);

    // Decayed untouched cells stay at their default value after the
    // read-modify-write; written cells start fresh.
    for (std::size_t row = first_row; row <= last_row; ++row) {
        const std::size_t begin = row * cfg.rowBits();
        const std::size_t end = begin + cfg.rowBits();
        const bool def = cfg.defaultBit(row);
        for (std::size_t cell = begin; cell < end; ++cell) {
            if (dead.get(cell)) {
                stored.set(cell, def);
                dead.clear(cell);
            }
        }
    }

    stored.blit(start, data);
    for (std::size_t i = 0; i < data.size(); ++i)
        dead.clear(start + i);

    for (std::size_t row = first_row; row <= last_row; ++row)
        rechargeRow(row);
}

BitVec
DramChip::peek() const
{
    BitVec out = stored;
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        const double s = stress[row];
        const bool def = cfg.defaultBit(row);
        const std::size_t begin = row * cfg.rowBits();
        const std::size_t end = begin + cfg.rowBits();
        for (std::size_t cell = begin; cell < end; ++cell) {
            if (dead.get(cell)) {
                out.set(cell, def);
            } else if (stored.get(cell) != def && s >= effRet[cell]) {
                out.set(cell, def);
            }
        }
    }
    return out;
}

BitVec
DramChip::peekRegion(std::size_t start, std::size_t len) const
{
    // Simple but correct: decay state is row-local, so peeking the
    // whole device and slicing is equivalent. Regions are small in
    // practice (pages), so do the row-local work directly.
    PC_ASSERT(start + len <= size(), "peekRegion out of range");
    BitVec out(len);
    for (std::size_t i = 0; i < len; ++i) {
        const std::size_t cell = start + i;
        const std::size_t row = rowOf(cell);
        const bool def = cfg.defaultBit(row);
        bool v = stored.get(cell);
        if (dead.get(cell) ||
            (v != def && stress[row] >= effRet[cell])) {
            v = def;
        }
        out.set(i, v);
    }
    return out;
}

BitVec
DramChip::read()
{
    refreshAll();
    return stored;
}

void
DramChip::refreshRow(std::size_t row)
{
    PC_ASSERT(row < cfg.rows, "refreshRow out of range");
    materializeDecay(row);
    const bool def = cfg.defaultBit(row);
    const std::size_t begin = row * cfg.rowBits();
    const std::size_t end = begin + cfg.rowBits();
    for (std::size_t cell = begin; cell < end; ++cell) {
        if (dead.get(cell)) {
            // The refresh write locks in the decayed default value;
            // the cell is healthy again, just holding the wrong data.
            stored.set(cell, def);
            dead.clear(cell);
        }
    }
    rechargeRow(row);
}

void
DramChip::refreshAll()
{
    for (std::size_t row = 0; row < cfg.rows; ++row)
        refreshRow(row);
}

void
DramChip::elapse(Seconds dt, Celsius temp)
{
    PC_ASSERT(dt >= 0.0, "elapse requires non-negative time");
    const double add = dt * model.accel(temp);
    for (auto &s : stress)
        s += add;
}

void
DramChip::elapseRow(std::size_t row, Seconds dt, Celsius temp)
{
    PC_ASSERT(row < cfg.rows, "elapseRow out of range");
    PC_ASSERT(dt >= 0.0, "elapseRow requires non-negative time");
    stress[row] += dt * model.accel(temp);
}

BitVec
DramChip::worstCasePattern() const
{
    BitVec out(size());
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        if (!cfg.defaultBit(row)) {
            for (std::size_t i = 0; i < cfg.rowBits(); ++i)
                out.set(row * cfg.rowBits() + i);
        }
    }
    return out;
}

std::size_t
DramChip::decayedCount() const
{
    std::size_t n = 0;
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        const double s = stress[row];
        const std::size_t begin = row * cfg.rowBits();
        const std::size_t end = begin + cfg.rowBits();
        for (std::size_t cell = begin; cell < end; ++cell) {
            if (dead.get(cell)) {
                ++n;
            } else if (stored.get(cell) != cfg.defaultBit(row) &&
                       s >= effRet[cell]) {
                ++n;
            }
        }
    }
    return n;
}

} // namespace pcause
