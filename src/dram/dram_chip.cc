#include "dram/dram_chip.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

namespace pcause
{

namespace
{

/**
 * Decay decisions for the charged cells of one word. @p charged has
 * a bit set for every charged cell of interest in word @p wi (cell
 * indices 64*wi + bit); the return has a bit set for every one of
 * those cells whose effective retention the stress @p s has passed.
 *
 * The bound check handles almost every cell with one float compare;
 * only cells whose base retention sits inside the trial-noise band
 * around the stress (and VRT cells near their two states) pay for a
 * counter-based sample.
 */
std::uint64_t
decayWord(const RetentionModel &model, std::uint64_t trial_stream,
          std::uint64_t charged, std::size_t wi, double s,
          std::uint64_t ep)
{
    std::uint64_t decayed = 0;
    while (charged) {
        const unsigned b = std::countr_zero(charged);
        charged &= charged - 1;
        const std::size_t cell = wi * 64 + b;
        if (s < model.minEffective(cell))
            continue;
        if (s >= model.maxEffective(cell) ||
            s >= model.effectiveRetention(cell, trial_stream, ep)) {
            decayed |= 1ull << b;
        }
    }
    return decayed;
}

/**
 * Walk the words overlapping cell span [begin, end) of a single row
 * and hand every non-empty decay mask to @p f(word_index, mask),
 * ascending by word index. @p content supplies the stored bits,
 * @p defw the row's default value replicated across a word, @p s the
 * row's stress, and @p ep its charge epoch. Words whose minimum
 * possible retention exceeds the stress are skipped without touching
 * per-cell state.
 *
 * The interior full words — everything but a possible partial word
 * at each edge of the span — run through the dispatched
 * simd::buildChargedWords kernel, which fuses the charged-bit XOR
 * with the word-min-retention screen and reports whether any word
 * survived; only survivors pay for per-cell decayWord sampling. The
 * kernel's screen is exactly the scalar condition
 * (!charged || s < wordMinEffective), so which cells get sampled —
 * and therefore every decay decision — is unchanged.
 */
template <typename F>
void
decaySpanWords(const RetentionModel &model, const BitVec &content,
               std::uint64_t trial_stream, std::size_t begin,
               std::size_t end, std::uint64_t defw, double s,
               std::uint64_t ep, F &&f)
{
    // One word of the span, any alignment: mask selects [lo, hi).
    const auto scalarWord = [&](std::size_t wi) {
        const std::size_t lo = std::max(begin, wi * 64);
        const std::size_t hi = std::min(end, wi * 64 + 64);
        const std::uint64_t mask = (hi - lo == 64)
            ? ~0ull
            : ((~0ull >> (64 - (hi - lo))) << (lo - wi * 64));
        const std::uint64_t charged =
            (content.wordAt(wi) ^ defw) & mask;
        if (!charged || s < model.wordMinEffective(wi))
            return;
        const std::uint64_t dead =
            decayWord(model, trial_stream, charged, wi, s, ep);
        if (dead)
            f(wi, dead);
    };

    const std::size_t wfirst = begin / 64;
    const std::size_t wlast = (end - 1) / 64;
    const std::size_t full_lo = (begin + 63) / 64; // first full word
    const std::size_t full_hi = end / 64;          // one past last full

    if (full_lo >= full_hi) {
        // Span covers no full word (short or straddling): all scalar.
        for (std::size_t wi = wfirst; wi <= wlast; ++wi)
            scalarWord(wi);
        return;
    }

    if (wfirst < full_lo)
        scalarWord(wfirst); // leading partial word

    // Interior full words in fixed chunks through the SIMD kernel.
    constexpr std::size_t chunkWords = 256;
    std::uint64_t charged[chunkWords];
    const std::uint64_t *words = content.words().data();
    const float *word_min = model.wordMinEffectiveData();
    for (std::size_t w0 = full_lo; w0 < full_hi; w0 += chunkWords) {
        const std::size_t nw = std::min(chunkWords, full_hi - w0);
        if (!simd::buildChargedWords(words + w0, nw, defw,
                                     word_min + w0, s, charged))
            continue;
        for (std::size_t i = 0; i < nw; ++i) {
            if (!charged[i])
                continue;
            const std::size_t wi = w0 + i;
            const std::uint64_t dead = decayWord(
                model, trial_stream, charged[i], wi, s, ep);
            if (dead)
                f(wi, dead);
        }
    }

    if (full_hi <= wlast)
        scalarWord(wlast); // trailing partial word
}

} // anonymous namespace

DramChip::DramChip(const DramConfig &config, std::uint64_t chip_seed)
    : cfg(config),
      model(config, chip_seed),
      stored(config.totalBits()),
      stress(config.rows, 0.0),
      epoch(config.rows, 0),
      trialStreamBase(RetentionModel::trialStream(chip_seed, 0))
{
    // A powered-up chip holds every cell at its default value.
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        if (!cfg.defaultBit(row))
            continue;
        const std::size_t begin = row * cfg.rowBits();
        const std::size_t end = begin + cfg.rowBits();
        const std::size_t wlast = (end - 1) / 64;
        for (std::size_t wi = begin / 64; wi <= wlast; ++wi) {
            const std::size_t lo = std::max(begin, wi * 64);
            const std::size_t hi = std::min(end, wi * 64 + 64);
            const std::uint64_t mask = (hi - lo == 64)
                ? ~0ull
                : ((~0ull >> (64 - (hi - lo))) << (lo - wi * 64));
            stored.applyMasked(wi, mask, true);
        }
    }
}

void
DramChip::reseedTrial(std::uint64_t trial_key)
{
    trialKeyVal = trial_key;
    trialStreamBase =
        RetentionModel::trialStream(model.chipSeed(), trial_key);
    // Restart the charge-interval counters so the same trial key
    // always replays the same noise regardless of prior history.
    std::fill(epoch.begin(), epoch.end(), 0);
}

void
DramChip::materializeDecay(std::size_t row)
{
    const double s = stress[row];
    if (s <= 0.0 || s < model.rowMinEffective(row))
        return;
    const std::size_t begin = row * cfg.rowBits();
    const bool def = cfg.defaultBit(row);
    decaySpanWords(model, stored, trialStreamBase, begin,
                   begin + cfg.rowBits(), def ? ~0ull : 0ull, s,
                   epoch[row],
                   [&](std::size_t wi, std::uint64_t mask) {
                       stored.applyMasked(wi, mask, def);
                   });
}

void
DramChip::rechargeRow(std::size_t row)
{
    stress[row] = 0.0;
    // Advancing the epoch rekeys every cell's counter-based noise
    // draw, i.e. resamples the whole row's effective retention in
    // O(1) — samples are only materialized if a later observation
    // lands inside a cell's noise band.
    ++epoch[row];
}

void
DramChip::write(const BitVec &data)
{
    PC_ASSERT(data.size() == size(), "write size mismatch");
    stored = data;
    for (std::size_t row = 0; row < cfg.rows; ++row)
        rechargeRow(row);
}

void
DramChip::writeRegion(std::size_t start, const BitVec &data)
{
    PC_ASSERT(start + data.size() <= size(),
              "writeRegion out of range");
    if (data.empty())
        return;

    const std::size_t first_row = rowOf(start);
    const std::size_t last_row = rowOf(start + data.size() - 1);

    // The row read phase folds decay into untouched cells first:
    // decayed cells stay at their default value after the
    // read-modify-write; written cells start fresh.
    for (std::size_t row = first_row; row <= last_row; ++row)
        materializeDecay(row);

    stored.blit(start, data);

    for (std::size_t row = first_row; row <= last_row; ++row)
        rechargeRow(row);
}

BitVec
DramChip::peek() const
{
    BitVec out = stored;
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        const double s = stress[row];
        if (s <= 0.0 || s < model.rowMinEffective(row))
            continue;
        const bool def = cfg.defaultBit(row);
        const std::size_t begin = row * cfg.rowBits();
        decaySpanWords(model, stored, trialStreamBase, begin,
                       begin + cfg.rowBits(), def ? ~0ull : 0ull, s,
                       epoch[row],
                       [&](std::size_t wi, std::uint64_t mask) {
                           out.applyMasked(wi, mask, def);
                       });
    }
    return out;
}

BitVec
DramChip::peekParallel(ThreadPool &pool) const
{
    // Sharding by row is only safe when rows do not share backing
    // words; all shipped geometries are word-aligned, odd ones fall
    // back to the serial path.
    if (cfg.rowBits() % 64 != 0 || pool.size() == 1)
        return peek();
    BitVec out = stored;
    pool.parallelFor(0, cfg.rows, [&](std::size_t row) {
        const double s = stress[row];
        if (s <= 0.0 || s < model.rowMinEffective(row))
            return;
        const bool def = cfg.defaultBit(row);
        const std::size_t begin = row * cfg.rowBits();
        decaySpanWords(model, stored, trialStreamBase, begin,
                       begin + cfg.rowBits(), def ? ~0ull : 0ull, s,
                       epoch[row],
                       [&](std::size_t wi, std::uint64_t mask) {
                           out.applyMasked(wi, mask, def);
                       });
    });
    return out;
}

BitVec
DramChip::peekRegion(std::size_t start, std::size_t len) const
{
    PC_ASSERT(start + len <= size(), "peekRegion out of range");
    BitVec out = stored.slice(start, len);
    if (len == 0)
        return out;
    const std::size_t first_row = rowOf(start);
    const std::size_t last_row = rowOf(start + len - 1);
    for (std::size_t row = first_row; row <= last_row; ++row) {
        const double s = stress[row];
        if (s <= 0.0 || s < model.rowMinEffective(row))
            continue;
        const bool def = cfg.defaultBit(row);
        const std::size_t begin =
            std::max(start, row * cfg.rowBits());
        const std::size_t end =
            std::min(start + len, (row + 1) * cfg.rowBits());
        decaySpanWords(model, stored, trialStreamBase, begin, end,
                       def ? ~0ull : 0ull, s, epoch[row],
                       [&](std::size_t wi, std::uint64_t mask) {
                           while (mask) {
                               const unsigned b =
                                   std::countr_zero(mask);
                               mask &= mask - 1;
                               out.set(wi * 64 + b - start, def);
                           }
                       });
    }
    return out;
}

BitVec
DramChip::read()
{
    refreshAll();
    return stored;
}

void
DramChip::refreshRow(std::size_t row)
{
    PC_ASSERT(row < cfg.rows, "refreshRow out of range");
    // The refresh write locks in decayed default values; the cells
    // are healthy again, just holding the wrong data.
    materializeDecay(row);
    rechargeRow(row);
}

void
DramChip::refreshAll()
{
    for (std::size_t row = 0; row < cfg.rows; ++row)
        refreshRow(row);
}

void
DramChip::elapse(Seconds dt, Celsius temp)
{
    PC_ASSERT(dt >= 0.0, "elapse requires non-negative time");
    const double add = dt * model.accel(temp);
    for (auto &s : stress)
        s += add;
}

BitVec
DramChip::elapseAndPeekParallel(Seconds dt, Celsius temp,
                                ThreadPool &pool)
{
    elapse(dt, temp);
    return peekParallel(pool);
}

void
DramChip::elapseRow(std::size_t row, Seconds dt, Celsius temp)
{
    PC_ASSERT(row < cfg.rows, "elapseRow out of range");
    PC_ASSERT(dt >= 0.0, "elapseRow requires non-negative time");
    stress[row] += dt * model.accel(temp);
}

BitVec
DramChip::trialPeek(const BitVec &pattern, std::uint64_t trial_key,
                    Seconds dt, Celsius temp) const
{
    PC_ASSERT(pattern.size() == size(), "pattern size mismatch");
    PC_ASSERT(dt >= 0.0, "trialPeek requires non-negative time");
    // After reseedTrial + write every row is at epoch 1 with its
    // full stress accumulated in one hold — the state the keyed
    // generator reproduces here without mutating anything.
    const double s = dt * model.accel(temp);
    const std::uint64_t stream =
        RetentionModel::trialStream(model.chipSeed(), trial_key);
    BitVec out = pattern;
    if (s <= 0.0)
        return out;
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        if (s < model.rowMinEffective(row))
            continue;
        const bool def = cfg.defaultBit(row);
        const std::size_t begin = row * cfg.rowBits();
        decaySpanWords(model, pattern, stream, begin,
                       begin + cfg.rowBits(), def ? ~0ull : 0ull, s,
                       1,
                       [&](std::size_t wi, std::uint64_t mask) {
                           out.applyMasked(wi, mask, def);
                       });
    }
    return out;
}

std::vector<BitVec>
DramChip::trialPeekBatch(const BitVec &pattern,
                         const std::vector<std::uint64_t> &trial_keys,
                         Seconds dt, Celsius temp,
                         ThreadPool &pool) const
{
    std::vector<BitVec> out(trial_keys.size());
    pool.parallelFor(0, trial_keys.size(), [&](std::size_t i) {
        out[i] = trialPeek(pattern, trial_keys[i], dt, temp);
    });
    return out;
}

BitVec
DramChip::worstCasePattern() const
{
    BitVec out(size());
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        if (cfg.defaultBit(row))
            continue;
        const std::size_t begin = row * cfg.rowBits();
        const std::size_t end = begin + cfg.rowBits();
        const std::size_t wlast = (end - 1) / 64;
        for (std::size_t wi = begin / 64; wi <= wlast; ++wi) {
            const std::size_t lo = std::max(begin, wi * 64);
            const std::size_t hi = std::min(end, wi * 64 + 64);
            const std::uint64_t mask = (hi - lo == 64)
                ? ~0ull
                : ((~0ull >> (64 - (hi - lo))) << (lo - wi * 64));
            out.applyMasked(wi, mask, true);
        }
    }
    return out;
}

std::size_t
DramChip::decayedCount() const
{
    // Same word-mask builder as peek(): the count is exactly the
    // number of bits peek() would flip back to the default.
    std::size_t n = 0;
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        const double s = stress[row];
        if (s <= 0.0 || s < model.rowMinEffective(row))
            continue;
        const std::size_t begin = row * cfg.rowBits();
        decaySpanWords(model, stored, trialStreamBase, begin,
                       begin + cfg.rowBits(),
                       cfg.defaultBit(row) ? ~0ull : 0ull, s,
                       epoch[row],
                       [&](std::size_t, std::uint64_t mask) {
                           n += std::popcount(mask);
                       });
    }
    return n;
}

} // namespace pcause
