#include "dram/retention_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pcause
{

RetentionModel::RetentionModel(const DramConfig &config,
                               std::uint64_t chip_seed)
    : cfg(config), seed(chip_seed)
{
    cfg.validate();

    const std::size_t n = cfg.totalBits();
    base.resize(n);
    vrt.resize(n);

    // Every cell draws from its own keyed substream so that a chip's
    // retention map is a pure function of (config, seed) and does not
    // depend on construction order. When the config declares a
    // wafer-correlated share, a second stream keyed by the wafer
    // seed contributes that fraction of the variation — identically
    // for every chip on the wafer.
    Rng root(chip_seed);
    Rng process = root.substream(0x70726f63 /* "proc" */);
    Rng vrt_stream = root.substream(0x76727463 /* "vrtc" */);
    Rng wafer = Rng(cfg.waferSeed).substream(0x77616665 /* "wafe" */);

    const double rho = cfg.waferCorrelation;
    const double own_share = std::sqrt(1.0 - rho * rho);

    for (std::size_t i = 0; i < n; ++i) {
        // Standard-normal deviate with the configured wafer share;
        // the wafer stream must advance for every cell even when
        // uncorrelated so chip streams stay aligned.
        const double shared = wafer.gaussian();
        const double own = process.gaussian();
        const double z = own_share * own + rho * shared;

        double t;
        switch (cfg.distribution) {
          case RetentionDistribution::Gaussian:
            t = cfg.retentionMean + cfg.retentionSpread * z;
            break;
          case RetentionDistribution::LogNormalSkewed:
            // Median at retentionMean; reciprocal volatility is then
            // log-normal, i.e. skewed toward high volatility.
            t = cfg.retentionMean *
                std::exp(-cfg.retentionSpread * z);
            break;
          default:
            panic("unhandled retention distribution");
        }
        base[i] = static_cast<float>(
            std::max<double>(t, cfg.retentionFloor));
        vrt[i] = vrt_stream.chance(cfg.vrtFraction);
    }

    // Per-cell sample bounds: the noise deviate is clamped to
    // +-noiseClampSigmas, and a VRT excursion multiplies by
    // vrtFastFactor. These bounds are what lets the decay engine
    // avoid sampling for all but the cells sitting right at the
    // current stress level.
    const double lo = std::exp(-noiseClampSigmas * cfg.trialNoiseSigma);
    const double hi = std::exp(noiseClampSigmas * cfg.trialNoiseSigma);
    minEff.resize(n);
    maxEff.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        double mn = base[i] * lo;
        double mx = base[i] * hi;
        if (vrt[i]) {
            mn = std::min(mn, mn * cfg.vrtFastFactor);
            mx = std::max(mx, mx * cfg.vrtFastFactor);
        }
        minEff[i] = static_cast<float>(mn);
        maxEff[i] = static_cast<float>(mx);
    }

    wordMinEff.assign((n + 63) / 64, 0.0f);
    for (std::size_t wi = 0; wi < wordMinEff.size(); ++wi) {
        float m = minEff[wi * 64];
        const std::size_t end = std::min(n, wi * 64 + 64);
        for (std::size_t i = wi * 64 + 1; i < end; ++i)
            m = std::min(m, minEff[i]);
        wordMinEff[wi] = m;
    }

    rowMinEff.assign(cfg.rows, 0.0f);
    for (std::size_t row = 0; row < cfg.rows; ++row) {
        const std::size_t begin = row * cfg.rowBits();
        float m = minEff[begin];
        for (std::size_t i = begin + 1; i < begin + cfg.rowBits(); ++i)
            m = std::min(m, minEff[i]);
        rowMinEff[row] = m;
    }

    // Quantile table, built eagerly so stressQuantile() is a pure
    // read and safe to call from many threads at once.
    sortedBase = base;
    std::sort(sortedBase.begin(), sortedBase.end());
}

double
RetentionModel::accel(Celsius t) const
{
    return std::exp2((t - cfg.referenceTemp) / cfg.tempHalving);
}

Seconds
RetentionModel::retentionAt(std::size_t cell, Celsius t) const
{
    return base[cell] / accel(t);
}

Seconds
RetentionModel::sampleEffective(std::size_t cell, Rng &trial_rng) const
{
    double eff = base[cell];
    if (cfg.trialNoiseSigma > 0) {
        const double z = std::clamp(trial_rng.gaussian(),
                                    -noiseClampSigmas,
                                    noiseClampSigmas);
        eff *= std::exp(z * cfg.trialNoiseSigma);
    }
    if (vrt[cell] && trial_rng.chance(cfg.vrtToggleChance))
        eff *= cfg.vrtFastFactor;
    return eff;
}

std::uint64_t
RetentionModel::trialStream(std::uint64_t chip_seed,
                            std::uint64_t trial_key)
{
    return mix64(mix64(chip_seed, 0x74726c6e6f697365ull /* "trlnoise" */),
                 trial_key);
}

Seconds
RetentionModel::effectiveRetention(std::size_t cell,
                                   std::uint64_t trial_stream,
                                   std::uint64_t epoch) const
{
    Rng rng(mix64(trial_stream, mix64(cell, epoch)));
    return sampleEffective(cell, rng);
}

Seconds
RetentionModel::stressQuantile(double error_fraction) const
{
    PC_ASSERT(error_fraction > 0.0 && error_fraction < 1.0,
              "stressQuantile: fraction must be in (0,1)");
    auto idx = static_cast<std::size_t>(error_fraction *
                                        sortedBase.size());
    idx = std::min(idx, sortedBase.size() - 1);
    return sortedBase[idx];
}

} // namespace pcause
