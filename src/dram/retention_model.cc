#include "dram/retention_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pcause
{

RetentionModel::RetentionModel(const DramConfig &config,
                               std::uint64_t chip_seed)
    : cfg(config), seed(chip_seed)
{
    cfg.validate();

    const std::size_t n = cfg.totalBits();
    base.resize(n);
    vrt.resize(n);

    // Every cell draws from its own keyed substream so that a chip's
    // retention map is a pure function of (config, seed) and does not
    // depend on construction order. When the config declares a
    // wafer-correlated share, a second stream keyed by the wafer
    // seed contributes that fraction of the variation — identically
    // for every chip on the wafer.
    Rng root(chip_seed);
    Rng process = root.substream(0x70726f63 /* "proc" */);
    Rng vrt_stream = root.substream(0x76727463 /* "vrtc" */);
    Rng wafer = Rng(cfg.waferSeed).substream(0x77616665 /* "wafe" */);

    const double rho = cfg.waferCorrelation;
    const double own_share = std::sqrt(1.0 - rho * rho);

    for (std::size_t i = 0; i < n; ++i) {
        // Standard-normal deviate with the configured wafer share;
        // the wafer stream must advance for every cell even when
        // uncorrelated so chip streams stay aligned.
        const double shared = wafer.gaussian();
        const double own = process.gaussian();
        const double z = own_share * own + rho * shared;

        double t;
        switch (cfg.distribution) {
          case RetentionDistribution::Gaussian:
            t = cfg.retentionMean + cfg.retentionSpread * z;
            break;
          case RetentionDistribution::LogNormalSkewed:
            // Median at retentionMean; reciprocal volatility is then
            // log-normal, i.e. skewed toward high volatility.
            t = cfg.retentionMean *
                std::exp(-cfg.retentionSpread * z);
            break;
          default:
            panic("unhandled retention distribution");
        }
        base[i] = static_cast<float>(
            std::max<double>(t, cfg.retentionFloor));
        vrt[i] = vrt_stream.chance(cfg.vrtFraction);
    }
}

double
RetentionModel::accel(Celsius t) const
{
    return std::exp2((t - cfg.referenceTemp) / cfg.tempHalving);
}

Seconds
RetentionModel::retentionAt(std::size_t cell, Celsius t) const
{
    return base[cell] / accel(t);
}

Seconds
RetentionModel::sampleEffective(std::size_t cell, Rng &trial_rng) const
{
    double eff = base[cell];
    if (cfg.trialNoiseSigma > 0)
        eff *= std::exp(trial_rng.gaussian(0.0, cfg.trialNoiseSigma));
    if (vrt[cell] && trial_rng.chance(cfg.vrtToggleChance))
        eff *= cfg.vrtFastFactor;
    return eff;
}

Seconds
RetentionModel::stressQuantile(double error_fraction) const
{
    PC_ASSERT(error_fraction > 0.0 && error_fraction < 1.0,
              "stressQuantile: fraction must be in (0,1)");
    if (sortedBase.empty()) {
        sortedBase = base;
        std::sort(sortedBase.begin(), sortedBase.end());
    }
    auto idx = static_cast<std::size_t>(error_fraction *
                                        sortedBase.size());
    idx = std::min(idx, sortedBase.size() - 1);
    return sortedBase[idx];
}

} // namespace pcause
