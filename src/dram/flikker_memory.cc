#include "dram/flikker_memory.hh"

#include <cmath>

#include "util/logging.hh"

namespace pcause
{

FlikkerMemory::FlikkerMemory(DramChip &chip, double exact_fraction,
                             double accuracy, Celsius t)
    : dev(chip),
      exactRows(static_cast<std::size_t>(
          std::llround(exact_fraction * chip.config().rows))),
      controller(accuracy),
      temp(t)
{
    if (exact_fraction < 0.0 || exact_fraction >= 1.0)
        fatal("FlikkerMemory: exact fraction must be in [0,1)");
    if (exactRows == chip.config().rows)
        fatal("FlikkerMemory: approximate zone is empty");
}

std::size_t
FlikkerMemory::zoneStart(FlikkerZone zone) const
{
    return zone == FlikkerZone::Exact
        ? 0 : exactRows * dev.config().rowBits();
}

std::size_t
FlikkerMemory::zoneSize(FlikkerZone zone) const
{
    const std::size_t exact_bits = exactRows * dev.config().rowBits();
    return zone == FlikkerZone::Exact ? exact_bits
                                      : dev.size() - exact_bits;
}

void
FlikkerMemory::store(FlikkerZone zone, const BitVec &data)
{
    PC_ASSERT(data.size() <= zoneSize(zone),
              "buffer larger than zone");
    dev.writeRegion(zoneStart(zone), data);
}

Seconds
FlikkerMemory::approxInterval() const
{
    return controller.analyticInterval(dev.retention(), temp);
}

BitVec
FlikkerMemory::load(FlikkerZone zone, std::size_t len)
{
    PC_ASSERT(len <= zoneSize(zone), "read larger than zone");

    // Advance one approximate-zone interval, refreshing the exact
    // zone's rows on the JEDEC schedule throughout.
    const Seconds interval = approxInterval();
    const auto jedec_ticks = static_cast<std::uint64_t>(
        std::ceil(interval / jedecRefreshPeriod));
    for (std::uint64_t tick = 0; tick < jedec_ticks; ++tick) {
        const Seconds dt = std::min(
            jedecRefreshPeriod, interval - tick * jedecRefreshPeriod);
        dev.elapse(dt, temp);
        for (std::size_t row = 0; row < exactRows; ++row)
            dev.refreshRow(row);
    }

    const BitVec out = dev.peekRegion(zoneStart(zone), len);
    dev.refreshAll();
    return out;
}

BitVec
FlikkerMemory::roundTrip(FlikkerZone zone, const BitVec &data,
                         std::uint64_t trial_key)
{
    dev.reseedTrial(trial_key);
    store(zone, data);
    return load(zone, data.size());
}

double
FlikkerMemory::refreshEnergySaving() const
{
    // Refresh energy per row scales with its refresh rate; the
    // approximate zone refreshes interval/jedec times less often.
    const double approx_rows =
        static_cast<double>(dev.config().rows - exactRows);
    const double rate_ratio = jedecRefreshPeriod / approxInterval();
    const double relative =
        (exactRows + approx_rows * rate_ratio) / dev.config().rows;
    return 1.0 - relative;
}

} // namespace pcause
