#include "dram/memory_system.hh"

#include "util/logging.hh"

namespace pcause
{

InterleavedMemory::InterleavedMemory(std::vector<DramChip *> chips,
                                     std::size_t granularity)
    : members(std::move(chips)), gran(granularity)
{
    if (members.empty())
        fatal("InterleavedMemory: need at least one chip");
    for (auto *chip : members) {
        PC_ASSERT(chip != nullptr, "null chip");
        if (chip->size() != members[0]->size())
            fatal("InterleavedMemory: mixed chip sizes");
    }
    if (gran == 0 || members[0]->size() % gran != 0)
        fatal("InterleavedMemory: granularity must divide the chip "
              "size");
}

std::size_t
InterleavedMemory::size() const
{
    return members.size() * members[0]->size();
}

std::pair<std::size_t, std::size_t>
InterleavedMemory::mapAddress(std::size_t g) const
{
    PC_ASSERT(g < size(), "address out of range");
    const std::size_t block = g / gran;
    const std::size_t chip = block % members.size();
    const std::size_t local_block = block / members.size();
    return {chip, local_block * gran + g % gran};
}

void
InterleavedMemory::write(const BitVec &data)
{
    PC_ASSERT(data.size() == size(), "write size mismatch");
    // Stage per-chip images, then write each device once (device
    // writes refresh whole rows; scattering bit writes would
    // re-trigger row refreshes mid-pattern).
    std::vector<BitVec> staged;
    staged.reserve(members.size());
    for (std::size_t c = 0; c < members.size(); ++c)
        staged.emplace_back(members[0]->size());
    for (std::size_t g = 0; g < data.size(); ++g) {
        const auto [chip, local] = mapAddress(g);
        staged[chip].set(local, data.get(g));
    }
    for (std::size_t c = 0; c < members.size(); ++c)
        members[c]->write(staged[c]);
}

BitVec
InterleavedMemory::peek() const
{
    std::vector<BitVec> images;
    images.reserve(members.size());
    for (const auto *chip : members)
        images.push_back(chip->peek());
    BitVec out(size());
    for (std::size_t g = 0; g < out.size(); ++g) {
        const auto [chip, local] = mapAddress(g);
        out.set(g, images[chip].get(local));
    }
    return out;
}

void
InterleavedMemory::elapse(Seconds dt, Celsius temp)
{
    for (auto *chip : members)
        chip->elapse(dt, temp);
}

void
InterleavedMemory::refreshAll()
{
    for (auto *chip : members)
        chip->refreshAll();
}

void
InterleavedMemory::reseedTrial(std::uint64_t trial_key)
{
    for (std::size_t c = 0; c < members.size(); ++c)
        members[c]->reseedTrial(mix64(trial_key, c));
}

BitVec
InterleavedMemory::worstCasePattern() const
{
    std::vector<BitVec> worst;
    worst.reserve(members.size());
    for (const auto *chip : members)
        worst.push_back(chip->worstCasePattern());
    BitVec out(size());
    for (std::size_t g = 0; g < out.size(); ++g) {
        const auto [chip, local] = mapAddress(g);
        out.set(g, worst[chip].get(local));
    }
    return out;
}

} // namespace pcause
