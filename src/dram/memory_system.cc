#include "dram/memory_system.hh"

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace pcause
{

InterleavedMemory::InterleavedMemory(std::vector<DramChip *> chips,
                                     std::size_t granularity)
    : members(std::move(chips)), gran(granularity)
{
    if (members.empty())
        fatal("InterleavedMemory: need at least one chip");
    for (auto *chip : members) {
        PC_ASSERT(chip != nullptr, "null chip");
        if (chip->size() != members[0]->size())
            fatal("InterleavedMemory: mixed chip sizes");
    }
    if (gran == 0 || members[0]->size() % gran != 0)
        fatal("InterleavedMemory: granularity must divide the chip "
              "size");
}

std::size_t
InterleavedMemory::size() const
{
    return members.size() * members[0]->size();
}

std::pair<std::size_t, std::size_t>
InterleavedMemory::mapAddress(std::size_t g) const
{
    PC_ASSERT(g < size(), "address out of range");
    const std::size_t block = g / gran;
    const std::size_t chip = block % members.size();
    const std::size_t local_block = block / members.size();
    return {chip, local_block * gran + g % gran};
}

std::vector<BitVec>
InterleavedMemory::scatter(const BitVec &data) const
{
    std::vector<BitVec> staged;
    staged.reserve(members.size());
    for (std::size_t c = 0; c < members.size(); ++c)
        staged.emplace_back(members[0]->size());
    if (gran % 64 == 0) {
        // Blocks are whole words: move gran/64 words per block.
        const std::size_t gw = gran / 64;
        const std::size_t blocks = data.size() / gran;
        for (std::size_t b = 0; b < blocks; ++b) {
            const std::size_t chip = b % members.size();
            const std::size_t lb = b / members.size();
            for (std::size_t w = 0; w < gw; ++w)
                staged[chip].setWord(lb * gw + w,
                                     data.wordAt(b * gw + w));
        }
    } else {
        for (std::size_t g = 0; g < data.size(); ++g) {
            const auto [chip, local] = mapAddress(g);
            staged[chip].set(local, data.get(g));
        }
    }
    return staged;
}

BitVec
InterleavedMemory::gather(const std::vector<BitVec> &images) const
{
    BitVec out(size());
    if (gran % 64 == 0) {
        const std::size_t gw = gran / 64;
        const std::size_t blocks = out.size() / gran;
        for (std::size_t b = 0; b < blocks; ++b) {
            const std::size_t chip = b % members.size();
            const std::size_t lb = b / members.size();
            for (std::size_t w = 0; w < gw; ++w)
                out.setWord(b * gw + w,
                            images[chip].wordAt(lb * gw + w));
        }
    } else {
        for (std::size_t g = 0; g < out.size(); ++g) {
            const auto [chip, local] = mapAddress(g);
            out.set(g, images[chip].get(local));
        }
    }
    return out;
}

void
InterleavedMemory::write(const BitVec &data)
{
    PC_ASSERT(data.size() == size(), "write size mismatch");
    // Stage per-chip images, then write each device once (device
    // writes refresh whole rows; scattering bit writes would
    // re-trigger row refreshes mid-pattern).
    const std::vector<BitVec> staged = scatter(data);
    for (std::size_t c = 0; c < members.size(); ++c)
        members[c]->write(staged[c]);
}

BitVec
InterleavedMemory::peek() const
{
    std::vector<BitVec> images;
    images.reserve(members.size());
    for (const auto *chip : members)
        images.push_back(chip->peek());
    return gather(images);
}

void
InterleavedMemory::elapse(Seconds dt, Celsius temp)
{
    for (auto *chip : members)
        chip->elapse(dt, temp);
}

void
InterleavedMemory::refreshAll()
{
    for (auto *chip : members)
        chip->refreshAll();
}

void
InterleavedMemory::reseedTrial(std::uint64_t trial_key)
{
    for (std::size_t c = 0; c < members.size(); ++c)
        members[c]->reseedTrial(mix64(trial_key, c));
}

std::vector<BitVec>
InterleavedMemory::trialPeekBatch(
    const BitVec &pattern, const std::vector<std::uint64_t> &trial_keys,
    Seconds dt, Celsius temp, ThreadPool &pool) const
{
    PC_ASSERT(pattern.size() == size(), "pattern size mismatch");
    const std::vector<BitVec> staged = scatter(pattern);
    std::vector<BitVec> out(trial_keys.size());
    pool.parallelFor(0, trial_keys.size(), [&](std::size_t i) {
        std::vector<BitVec> images;
        images.reserve(members.size());
        // Per-chip keys match reseedTrial()'s derivation so a batch
        // trial equals the stateful sequence bit for bit.
        for (std::size_t c = 0; c < members.size(); ++c) {
            images.push_back(members[c]->trialPeek(
                staged[c], mix64(trial_keys[i], c), dt, temp));
        }
        out[i] = gather(images);
    });
    return out;
}

BitVec
InterleavedMemory::worstCasePattern() const
{
    std::vector<BitVec> worst;
    worst.reserve(members.size());
    for (const auto *chip : members)
        worst.push_back(chip->worstCasePattern());
    return gather(worst);
}

} // namespace pcause
