#include "dram/refresh_controller.hh"

#include <cmath>

#include "dram/dram_chip.hh"
#include "dram/retention_model.hh"
#include "util/logging.hh"

namespace pcause
{

RefreshController::RefreshController(double accuracy)
    : targetAccuracy(accuracy)
{
    if (accuracy <= 0.0 || accuracy >= 1.0)
        fatal("RefreshController: accuracy must be in (0,1), got %f",
              accuracy);
}

Seconds
RefreshController::analyticInterval(const RetentionModel &model,
                                    Celsius temp) const
{
    return model.stressQuantile(errorRate()) / model.accel(temp);
}

double
RefreshController::measureErrorRate(DramChip &chip, Seconds interval,
                                    Celsius temp)
{
    chip.write(chip.worstCasePattern());
    chip.elapse(interval, temp);
    const double errors = static_cast<double>(chip.decayedCount());
    chip.refreshAll();
    return errors / chip.size();
}

CalibrationResult
RefreshController::calibrate(DramChip &chip, Celsius temp,
                             double tolerance,
                             unsigned max_trials) const
{
    const double target = errorRate();

    // Establish a bracket [lo, hi] with error(lo) < target <
    // error(hi) by exponential growth from a conservative start.
    Seconds lo = milliseconds(1);
    Seconds hi = lo;
    unsigned trials = 0;
    double err_hi = 0.0;
    while (trials < max_trials) {
        err_hi = measureErrorRate(chip, hi, temp);
        ++trials;
        if (err_hi >= target)
            break;
        lo = hi;
        hi *= 2.0;
    }
    if (err_hi < target) {
        warn("calibrate: could not bracket %.4f error within %u trials",
             target, max_trials);
        return {hi, err_hi, trials};
    }

    // Bisect on the interval until the measured error is within
    // tolerance of the target or the trial budget runs out.
    Seconds mid = hi;
    double err_mid = err_hi;
    while (trials < max_trials) {
        mid = 0.5 * (lo + hi);
        err_mid = measureErrorRate(chip, mid, temp);
        ++trials;
        if (std::abs(err_mid - target) <= tolerance * target)
            break;
        if (err_mid < target)
            lo = mid;
        else
            hi = mid;
    }
    return {mid, err_mid, trials};
}

} // namespace pcause
