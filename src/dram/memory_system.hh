/**
 * @file
 * Multi-chip interleaved memory.
 *
 * Deployed systems do not expose single chips: a DIMM stripes
 * consecutive data blocks across several devices. InterleavedMemory
 * models that address mapping so the system-level questions can be
 * asked: a machine's fingerprint is the union of its chips'
 * fingerprints laid out by the interleave, identification treats
 * the machine as the unit, and replacing one device erases exactly
 * that device's share of the fingerprint (measured in
 * bench/ablation_interleaving).
 */

#ifndef PCAUSE_DRAM_MEMORY_SYSTEM_HH
#define PCAUSE_DRAM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "dram/dram_chip.hh"
#include "util/bitvec.hh"
#include "util/units.hh"

namespace pcause
{

/** Several DRAM devices behind one interleaved address space. */
class InterleavedMemory
{
  public:
    /**
     * @param chips        member devices (not owned; same geometry)
     * @param granularity  interleave block size in bits (a cache
     *                     line is 512; must divide the chip size)
     */
    InterleavedMemory(std::vector<DramChip *> chips,
                      std::size_t granularity = 512);

    /** Total bits across all chips. */
    std::size_t size() const;

    /** Number of member devices. */
    std::size_t numChips() const { return members.size(); }

    /** Member device @p i. */
    DramChip &chip(std::size_t i) { return *members[i]; }

    /** Interleave block size in bits. */
    std::size_t granularity() const { return gran; }

    /**
     * Device and local cell index backing global address @p g —
     * the interleave map, exposed for tests and analyses.
     */
    std::pair<std::size_t, std::size_t>
    mapAddress(std::size_t g) const;

    /** Write the full address space. */
    void write(const BitVec &data);

    /** Observe the full address space without refreshing. */
    BitVec peek() const;

    /** Let time pass on every member device. */
    void elapse(Seconds dt, Celsius temp);

    /** Refresh every member device. */
    void refreshAll();

    /** Reseed every member's trial-noise stream. */
    void reseedTrial(std::uint64_t trial_key);

    /**
     * Worst-case pattern for the interleaved space: anti-default
     * data for every member cell, through the address map.
     */
    BitVec worstCasePattern() const;

  private:
    std::vector<DramChip *> members;
    std::size_t gran;
};

} // namespace pcause

#endif // PCAUSE_DRAM_MEMORY_SYSTEM_HH
