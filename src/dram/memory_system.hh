/**
 * @file
 * Multi-chip interleaved memory.
 *
 * Deployed systems do not expose single chips: a DIMM stripes
 * consecutive data blocks across several devices. InterleavedMemory
 * models that address mapping so the system-level questions can be
 * asked: a machine's fingerprint is the union of its chips'
 * fingerprints laid out by the interleave, identification treats
 * the machine as the unit, and replacing one device erases exactly
 * that device's share of the fingerprint (measured in
 * bench/ablation_interleaving).
 *
 * When the interleave granularity is word-aligned (any multiple of
 * 64 bits — cache lines always are), scatter/gather between the
 * global address space and the member devices runs word-at-a-time;
 * trialPeekBatch() generates whole independent decay trials across
 * a thread pool without mutating the devices.
 */

#ifndef PCAUSE_DRAM_MEMORY_SYSTEM_HH
#define PCAUSE_DRAM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "dram/dram_chip.hh"
#include "util/bitvec.hh"
#include "util/units.hh"

namespace pcause
{

class ThreadPool;

/** Several DRAM devices behind one interleaved address space. */
class InterleavedMemory
{
  public:
    /**
     * @param chips        member devices (not owned; same geometry)
     * @param granularity  interleave block size in bits (a cache
     *                     line is 512; must divide the chip size)
     */
    InterleavedMemory(std::vector<DramChip *> chips,
                      std::size_t granularity = 512);

    /** Total bits across all chips. */
    std::size_t size() const;

    /** Number of member devices. */
    std::size_t numChips() const { return members.size(); }

    /** Member device @p i. */
    DramChip &chip(std::size_t i) { return *members[i]; }

    /** Interleave block size in bits. */
    std::size_t granularity() const { return gran; }

    /**
     * Device and local cell index backing global address @p g —
     * the interleave map, exposed for tests and analyses.
     */
    std::pair<std::size_t, std::size_t>
    mapAddress(std::size_t g) const;

    /** Write the full address space. */
    void write(const BitVec &data);

    /** Observe the full address space without refreshing. */
    BitVec peek() const;

    /** Let time pass on every member device. */
    void elapse(Seconds dt, Celsius temp);

    /** Refresh every member device. */
    void refreshAll();

    /** Reseed every member's trial-noise stream. */
    void reseedTrial(std::uint64_t trial_key);

    /**
     * Batch decay-trial generation: for each key k in
     * @p trial_keys, the interleaved contents after
     * reseedTrial(k); write(pattern); elapse(dt, temp); peek() —
     * computed as a pure function (device state is untouched) with
     * the trials sharded across @p pool. Bit-identical to running
     * that stateful sequence per key.
     */
    std::vector<BitVec>
    trialPeekBatch(const BitVec &pattern,
                   const std::vector<std::uint64_t> &trial_keys,
                   Seconds dt, Celsius temp, ThreadPool &pool) const;

    /**
     * Worst-case pattern for the interleaved space: anti-default
     * data for every member cell, through the address map.
     */
    BitVec worstCasePattern() const;

  private:
    /** Split @p data in global address order into per-chip images. */
    std::vector<BitVec> scatter(const BitVec &data) const;

    /** Reassemble per-chip images into global address order. */
    BitVec gather(const std::vector<BitVec> &images) const;

    std::vector<DramChip *> members;
    std::size_t gran;
};

} // namespace pcause

#endif // PCAUSE_DRAM_MEMORY_SYSTEM_HH
