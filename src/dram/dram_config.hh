/**
 * @file
 * Static configuration of a simulated DRAM device.
 *
 * A DramConfig bundles the geometry (rows x columns x bit planes),
 * the default-value layout, and the retention-time distribution that
 * stands in for process variation. Two presets mirror the paper's
 * evaluation hardware: the Samsung KM41464A 32 KB chips of the main
 * platform (Section 6) and the Micron DDR2 part of the FPGA platform
 * (Section 8.1).
 */

#ifndef PCAUSE_DRAM_DRAM_CONFIG_HH
#define PCAUSE_DRAM_DRAM_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/units.hh"

namespace pcause
{

/** Shape of the per-cell retention-time distribution. */
enum class RetentionDistribution
{
    /**
     * Gaussian retention times, the behaviour the paper reports for
     * its legacy chips ("The distribution of how quickly DRAM cells
     * decay follows a Gaussian distribution", Section 2).
     */
    Gaussian,

    /**
     * Log-normal retention, producing a volatility distribution
     * "skewed toward higher volatility" as Section 8.1 reports for
     * the DDR2 part.
     */
    LogNormalSkewed,
};

/** Immutable description of a DRAM device model. */
struct DramConfig
{
    /** Human-readable part name. */
    std::string name = "generic";

    /** Number of rows (refresh granularity). */
    std::size_t rows = 256;

    /** Number of column addresses per row. */
    std::size_t cols = 256;

    /** Bits per column address (word width). */
    std::size_t planes = 4;

    /**
     * Rows per default-value flip. The paper: "Generally, all cells
     * in the same row have the same default value, and the default
     * value alternates every few rows."
     */
    std::size_t defaultValuePeriod = 2;

    /** Distribution family for retention times. */
    RetentionDistribution distribution = RetentionDistribution::Gaussian;

    /**
     * Mean retention at the reference temperature (Gaussian), or the
     * retention median (log-normal). Paper Section 2: "some cells
     * decay in less than a tenth of a second, the majority of the
     * cells hold their value for tens of seconds."
     */
    Seconds retentionMean = 20.0;

    /** Std deviation (Gaussian) or log-sigma scale (log-normal). */
    double retentionSpread = 6.0;

    /**
     * Hard floor on retention at the reference temperature. Chosen
     * so the JEDEC 64 ms refresh keeps even the worst cell alive at
     * the reference temperature, while at the 85 C JEDEC ceiling
     * the same cell decays within ~11 ms — matching the paper's
     * "some cells decay in less than a tenth of a second".
     */
    Seconds retentionFloor = 0.25;

    /** Reference temperature the distribution is specified at. */
    Celsius referenceTemp = 40.0;

    /**
     * Temperature sensitivity: retention halves for every this many
     * degrees of heating (exponential acceleration, standard DRAM
     * retention behaviour; rank-preserving across cells).
     */
    Celsius tempHalving = 10.0;

    /**
     * Multiplicative per-charge-interval retention jitter
     * (log-normal sigma). Calibrated so that, at the 1% error level,
     * about 98% of failing cells repeat across trials (Figure 8).
     */
    double trialNoiseSigma = 0.001;

    /**
     * Fraction of cells exhibiting variable retention time (VRT):
     * such cells randomly toggle to a faster-leaking state, and are
     * the dominant source of the unpredictable cells in the paper's
     * Figure 8 heatmap.
     */
    double vrtFraction = 0.001;

    /** Retention multiplier of a VRT cell's fast state. */
    double vrtFastFactor = 0.5;

    /** Probability a VRT cell is in its fast state per interval. */
    double vrtToggleChance = 0.5;

    /**
     * Wafer-level (mask-dependent) share of the retention
     * variation, in [0, 1). The paper's Section 2 notes that some
     * capacitance variation may be mask-dependent and thus
     * replicated across chips from the same fabrication process,
     * while leakage variation (random dopant fluctuation) is not
     * and is expected to dominate. Zero models the paper's
     * expectation; larger values let the wafer-correlation ablation
     * probe how much shared structure identification survives.
     */
    double waferCorrelation = 0.0;

    /** Shared mask/wafer identity (meaningful when correlated). */
    std::uint64_t waferSeed = 0;

    /** Bits per row (columns x planes). */
    std::size_t rowBits() const { return cols * planes; }

    /** Total bits in the device. */
    std::size_t totalBits() const { return rows * rowBits(); }

    /**
     * Default (discharged) logical value of every cell in @p row.
     * Alternates every defaultValuePeriod rows.
     */
    bool defaultBit(std::size_t row) const
    {
        return (row / defaultValuePeriod) & 1;
    }

    /** Sanity-check the parameter set; fatal() on invalid configs. */
    void validate() const;

    /**
     * The Samsung KM41464A 64K x 4 bit NMOS DRAM used by the paper's
     * main platform: 256 rows x 256 columns x 4 planes = 32 KB.
     */
    static DramConfig km41464a();

    /**
     * The Micron MT4HTF3264HY DDR2 part of the Section 8.1 FPGA
     * platform. The real part is 256 MB; simulating every cell is
     * unnecessary for the paper's experiments, so the model exposes
     * a 512 Kbit window with the part's skewed volatility
     * distribution (the property Section 8.1 actually reports).
     */
    static DramConfig ddr2();

    /** A tiny 4 Kbit device for fast unit tests. */
    static DramConfig tiny();
};

} // namespace pcause

#endif // PCAUSE_DRAM_DRAM_CONFIG_HH
