#include "dram/dram_config.hh"

#include "util/logging.hh"

namespace pcause
{

void
DramConfig::validate() const
{
    if (rows == 0 || cols == 0 || planes == 0)
        fatal("DramConfig %s: geometry must be non-zero", name.c_str());
    if (defaultValuePeriod == 0)
        fatal("DramConfig %s: defaultValuePeriod must be >= 1",
              name.c_str());
    if (retentionMean <= 0 || retentionSpread <= 0)
        fatal("DramConfig %s: retention distribution must be positive",
              name.c_str());
    if (retentionFloor <= 0 || retentionFloor >= retentionMean)
        fatal("DramConfig %s: retention floor must be in "
              "(0, retentionMean)", name.c_str());
    if (tempHalving <= 0)
        fatal("DramConfig %s: tempHalving must be positive",
              name.c_str());
    if (trialNoiseSigma < 0 || vrtFraction < 0 || vrtFraction > 1)
        fatal("DramConfig %s: bad noise parameters", name.c_str());
    if (waferCorrelation < 0 || waferCorrelation >= 1)
        fatal("DramConfig %s: waferCorrelation must be in [0,1)",
              name.c_str());
}

DramConfig
DramConfig::km41464a()
{
    DramConfig c;
    c.name = "KM41464A";
    c.rows = 256;
    c.cols = 256;
    c.planes = 4;
    c.distribution = RetentionDistribution::Gaussian;
    c.retentionMean = 20.0;
    c.retentionSpread = 6.0;
    return c;
}

DramConfig
DramConfig::ddr2()
{
    DramConfig c;
    c.name = "MT4HTF3264HY-ddr2-window";
    c.rows = 512;
    c.cols = 128;
    c.planes = 8;
    c.distribution = RetentionDistribution::LogNormalSkewed;
    // Median retention comparable to the legacy part; the log-normal
    // shape puts extra mass at fast-decaying cells, i.e. volatility
    // skewed high as Section 8.1 observes.
    c.retentionMean = 16.0;
    c.retentionSpread = 0.45;
    return c;
}

DramConfig
DramConfig::tiny()
{
    DramConfig c;
    c.name = "tiny-test";
    c.rows = 16;
    c.cols = 64;
    c.planes = 4;
    return c;
}

} // namespace pcause
