/**
 * @file
 * Per-cell retention-time model.
 *
 * RetentionModel turns a chip seed ("process variation locked in at
 * manufacturing") into a stable per-cell retention time at the
 * reference temperature, plus the VRT cell map. It also owns the
 * temperature-acceleration law. Retention ordering across cells is
 * invariant under temperature by construction, which is the physical
 * property the whole fingerprinting attack rests on (paper Sections
 * 2 and 7.3).
 */

#ifndef PCAUSE_DRAM_RETENTION_MODEL_HH
#define PCAUSE_DRAM_RETENTION_MODEL_HH

#include <cstdint>
#include <vector>

#include "dram/dram_config.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace pcause
{

/** Manufacturing-time retention characteristics of one chip. */
class RetentionModel
{
  public:
    /**
     * Derive a chip's retention map from its configuration and a
     * manufacturing seed. Identical (config, seed) pairs model the
     * same physical chip.
     */
    RetentionModel(const DramConfig &config, std::uint64_t chip_seed);

    /** Number of cells. */
    std::size_t size() const { return base.size(); }

    /**
     * Nominal retention of @p cell at the reference temperature.
     * This is the stable, fingerprint-defining quantity.
     */
    Seconds baseRetention(std::size_t cell) const { return base[cell]; }

    /** True when @p cell is a variable-retention-time cell. */
    bool isVrt(std::size_t cell) const { return vrt[cell]; }

    /**
     * Acceleration factor at temperature @p t relative to the
     * reference temperature: decay progresses accel() times faster.
     * Exponential in temperature and identical for all cells, hence
     * rank preserving.
     */
    double accel(Celsius t) const;

    /**
     * Retention of @p cell at temperature @p t (nominal, no trial
     * noise): baseRetention / accel.
     */
    Seconds retentionAt(std::size_t cell, Celsius t) const;

    /**
     * Sample the effective retention of @p cell for one
     * charge-to-decay interval: nominal retention disturbed by
     * multiplicative trial noise and, for VRT cells, a possible
     * excursion to the fast-leak state.
     */
    Seconds sampleEffective(std::size_t cell, Rng &trial_rng) const;

    /**
     * The reference-temperature stress (equivalent seconds) at which
     * a fraction @p error_fraction of cells has decayed, computed
     * from the chip's own cells. This is what a measurement-driven
     * refresh controller converges to.
     */
    Seconds stressQuantile(double error_fraction) const;

    /** The configuration this model was built from. */
    const DramConfig &config() const { return cfg; }

    /** The manufacturing seed. */
    std::uint64_t chipSeed() const { return seed; }

  private:
    DramConfig cfg;
    std::uint64_t seed;
    std::vector<float> base;   //!< per-cell retention at reference temp
    std::vector<bool> vrt;     //!< per-cell VRT flag
    mutable std::vector<float> sortedBase; //!< lazily built for quantiles
};

} // namespace pcause

#endif // PCAUSE_DRAM_RETENTION_MODEL_HH
