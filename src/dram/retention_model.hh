/**
 * @file
 * Per-cell retention-time model.
 *
 * RetentionModel turns a chip seed ("process variation locked in at
 * manufacturing") into a stable per-cell retention time at the
 * reference temperature, plus the VRT cell map. It also owns the
 * temperature-acceleration law. Retention ordering across cells is
 * invariant under temperature by construction, which is the physical
 * property the whole fingerprinting attack rests on (paper Sections
 * 2 and 7.3).
 *
 * Trial noise is counter-based: the effective retention of a cell
 * for one charge interval is a pure function of (chip seed, trial
 * key, charge epoch, cell), so samples are order-independent and can
 * be evaluated lazily and in parallel. The noise deviate is clamped
 * to +-noiseClampSigmas standard deviations (probability ~1e-15 of
 * ever mattering), which bounds every sample inside
 * [minEffective(), maxEffective()] — the bounds the decay engine
 * uses to skip sampling almost everywhere.
 */

#ifndef PCAUSE_DRAM_RETENTION_MODEL_HH
#define PCAUSE_DRAM_RETENTION_MODEL_HH

#include <cstdint>
#include <vector>

#include "dram/dram_config.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace pcause
{

/** Manufacturing-time retention characteristics of one chip. */
class RetentionModel
{
  public:
    /**
     * Clamp (in standard deviations) applied to the trial-noise
     * Gaussian so effective retention is bounded per cell.
     */
    static constexpr double noiseClampSigmas = 8.0;

    /**
     * Derive a chip's retention map from its configuration and a
     * manufacturing seed. Identical (config, seed) pairs model the
     * same physical chip.
     */
    RetentionModel(const DramConfig &config, std::uint64_t chip_seed);

    /** Number of cells. */
    std::size_t size() const { return base.size(); }

    /**
     * Nominal retention of @p cell at the reference temperature.
     * This is the stable, fingerprint-defining quantity.
     */
    Seconds baseRetention(std::size_t cell) const { return base[cell]; }

    /** True when @p cell is a variable-retention-time cell. */
    bool isVrt(std::size_t cell) const { return vrt[cell]; }

    /**
     * Acceleration factor at temperature @p t relative to the
     * reference temperature: decay progresses accel() times faster.
     * Exponential in temperature and identical for all cells, hence
     * rank preserving.
     */
    double accel(Celsius t) const;

    /**
     * Retention of @p cell at temperature @p t (nominal, no trial
     * noise): baseRetention / accel.
     */
    Seconds retentionAt(std::size_t cell, Celsius t) const;

    /**
     * Sample the effective retention of @p cell for one
     * charge-to-decay interval: nominal retention disturbed by
     * multiplicative trial noise and, for VRT cells, a possible
     * excursion to the fast-leak state.
     */
    Seconds sampleEffective(std::size_t cell, Rng &trial_rng) const;

    /**
     * Stream base for counter-based trial noise: hash of the chip
     * seed and the trial key. Pass the result to
     * effectiveRetention() for every cell/epoch of that trial.
     */
    static std::uint64_t trialStream(std::uint64_t chip_seed,
                                     std::uint64_t trial_key);

    /**
     * Counter-based effective retention: the sample for @p cell in
     * charge interval @p epoch of the trial identified by
     * @p trial_stream. A pure function of its arguments —
     * evaluation order does not matter, so callers may skip, repeat,
     * or parallelize draws freely.
     */
    Seconds effectiveRetention(std::size_t cell,
                               std::uint64_t trial_stream,
                               std::uint64_t epoch) const;

    /**
     * Smallest effective retention any draw can produce for
     * @p cell: below this stress the cell can never decay.
     */
    Seconds minEffective(std::size_t cell) const { return minEff[cell]; }

    /**
     * Largest effective retention any draw can produce for @p cell:
     * at or above this stress the cell always decays.
     */
    Seconds maxEffective(std::size_t cell) const { return maxEff[cell]; }

    /**
     * Minimum of minEffective() over the 64-cell word @p wi (cells
     * [64*wi, 64*wi+64)): lets the decay engine skip whole words.
     */
    Seconds wordMinEffective(std::size_t wi) const
    {
        return wordMinEff[wi];
    }

    /**
     * Raw per-word lower-bound array (float, one entry per 64-cell
     * word) for the SIMD charged-word kernel; entry @p wi is the
     * value wordMinEffective(@p wi) returns.
     */
    const float *wordMinEffectiveData() const { return wordMinEff.data(); }

    /** Minimum of minEffective() over @p row's cells. */
    Seconds rowMinEffective(std::size_t row) const
    {
        return rowMinEff[row];
    }

    /**
     * The reference-temperature stress (equivalent seconds) at which
     * a fraction @p error_fraction of cells has decayed, computed
     * from the chip's own cells. This is what a measurement-driven
     * refresh controller converges to. Thread-safe: the quantile
     * table is built eagerly at construction.
     */
    Seconds stressQuantile(double error_fraction) const;

    /** The configuration this model was built from. */
    const DramConfig &config() const { return cfg; }

    /** The manufacturing seed. */
    std::uint64_t chipSeed() const { return seed; }

  private:
    DramConfig cfg;
    std::uint64_t seed;
    std::vector<float> base;   //!< per-cell retention at reference temp
    std::vector<bool> vrt;     //!< per-cell VRT flag
    std::vector<float> minEff; //!< per-cell lower bound on any sample
    std::vector<float> maxEff; //!< per-cell upper bound on any sample
    std::vector<float> wordMinEff; //!< min of minEff per 64-cell word
    std::vector<float> rowMinEff;  //!< min of minEff per row
    std::vector<float> sortedBase; //!< sorted copy for quantiles
};

} // namespace pcause

#endif // PCAUSE_DRAM_RETENTION_MODEL_HH
