/**
 * @file
 * Behavioural model of a single DRAM device.
 *
 * DramChip simulates the decay mechanics the paper's platform
 * exposes by disabling automatic refresh: cells written opposite
 * their default value hold charge that leaks away; once the
 * accumulated unrefreshed time at temperature exceeds a cell's
 * effective retention, the cell reverts to its default value. A
 * refresh (or write, which is a row read-modify-write) locks in
 * whatever value the row currently holds — a decayed cell is
 * refreshed at its default value, so errors persist.
 *
 * Temperature is handled as accumulated "stress": elapsed wall time
 * is scaled by the Arrhenius-style acceleration factor and compared
 * against reference-temperature retention, so arbitrary temperature
 * profiles are supported.
 *
 * The decay hot path operates on 64-bit words: each row's decay is
 * computed as a word mask (charged cells whose effective retention
 * the accumulated stress has passed) and applied with bulk AND/OR.
 * Effective retention is sampled lazily through the retention
 * model's counter-based generator — keyed on (chip seed, trial key,
 * charge epoch, cell) — so a recharge costs O(1) per row and
 * whole-trial observations are pure functions that can be sharded
 * across a thread pool (trialPeek / trialPeekBatch / peekParallel).
 */

#ifndef PCAUSE_DRAM_DRAM_CHIP_HH
#define PCAUSE_DRAM_DRAM_CHIP_HH

#include <cstdint>
#include <vector>

#include "dram/dram_config.hh"
#include "dram/retention_model.hh"
#include "util/bitvec.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace pcause
{

class ThreadPool;

/** One simulated DRAM device with refresh disabled by default. */
class DramChip
{
  public:
    /**
     * Manufacture a chip.
     *
     * @param config  device geometry and physics parameters
     * @param chip_seed  manufacturing seed; equal seeds model the
     *                   same physical chip
     */
    DramChip(const DramConfig &config, std::uint64_t chip_seed);

    /** Device geometry and physics parameters. */
    const DramConfig &config() const { return cfg; }

    /** The chip's manufacturing-time retention characteristics. */
    const RetentionModel &retention() const { return model; }

    /** Manufacturing seed (doubles as a chip identity in tests). */
    std::uint64_t chipSeed() const { return model.chipSeed(); }

    /** Total bits. */
    std::size_t size() const { return cfg.totalBits(); }

    /** Row index holding bit @p cell. */
    std::size_t rowOf(std::size_t cell) const
    {
        return cell / cfg.rowBits();
    }

    /**
     * Reseed the per-trial noise stream. Call once per experimental
     * trial to make trials reproducible yet independent: the same
     * trial key always replays the same noise, regardless of what
     * ran before.
     */
    void reseedTrial(std::uint64_t trial_key);

    /** The trial key set by the last reseedTrial() (0 initially). */
    std::uint64_t trialKey() const { return trialKeyVal; }

    /** Accumulated reference-temperature stress on @p row. */
    double rowStress(std::size_t row) const { return stress[row]; }

    /**
     * Charge epoch of @p row: the number of recharges (writes or
     * refreshes) the row has seen since the last reseedTrial().
     * Together with the trial key this indexes the counter-based
     * noise stream.
     */
    std::uint64_t rowEpoch(std::size_t row) const { return epoch[row]; }

    /** Overwrite the entire device; all rows are freshly charged. */
    void write(const BitVec &data);

    /**
     * Overwrite bits [start, start+data.size()). Rows touched by the
     * range undergo DRAM write semantics: the whole row is read
     * (materializing any decay in untouched cells), then rewritten,
     * recharging all its non-default cells.
     */
    void writeRegion(std::size_t start, const BitVec &data);

    /**
     * Non-intrusive observation of current logical contents:
     * decayed cells read as their default value. Does not refresh.
     */
    BitVec peek() const;

    /** peek() with rows sharded across @p pool. */
    BitVec peekParallel(ThreadPool &pool) const;

    /** Observation of bits [start, start+len) without refreshing. */
    BitVec peekRegion(std::size_t start, std::size_t len) const;

    /**
     * Read the whole device with real DRAM semantics: the read
     * refreshes every row, locking decayed cells at their default
     * value and recharging surviving cells.
     */
    BitVec read();

    /** Refresh a single row (read followed by write, per the paper). */
    void refreshRow(std::size_t row);

    /** Refresh every row. */
    void refreshAll();

    /**
     * Let @p dt wall-clock seconds pass at temperature @p temp with
     * automatic refresh disabled.
     */
    void elapse(Seconds dt, Celsius temp);

    /** elapse() followed by peekParallel(). */
    BitVec elapseAndPeekParallel(Seconds dt, Celsius temp,
                                 ThreadPool &pool);

    /**
     * Accumulate unrefreshed hold time on a single row — the
     * primitive behind multi-rate refresh schemes (RAIDR-style
     * controllers refresh different rows at different periods, so
     * rows age at different effective rates between their own
     * refreshes).
     */
    void elapseRow(std::size_t row, Seconds dt, Celsius temp);

    /**
     * One whole decay trial as a pure function: the contents this
     * device would show after reseedTrial(trial_key), write(pattern)
     * and an unrefreshed hold of @p dt at @p temp — computed without
     * touching device state. Bit-identical to running that stateful
     * sequence. Safe to call concurrently from many threads.
     */
    BitVec trialPeek(const BitVec &pattern, std::uint64_t trial_key,
                     Seconds dt, Celsius temp) const;

    /**
     * trialPeek() for a batch of independent trial keys, sharded
     * across @p pool. Result i corresponds to trial_keys[i].
     */
    std::vector<BitVec>
    trialPeekBatch(const BitVec &pattern,
                   const std::vector<std::uint64_t> &trial_keys,
                   Seconds dt, Celsius temp, ThreadPool &pool) const;

    /**
     * The worst-case test pattern: every cell written opposite its
     * default value, so every cell is charged and able to decay
     * (paper Section 6).
     */
    BitVec worstCasePattern() const;

    /** Number of currently-decayed cells. */
    std::size_t decayedCount() const;

  private:
    /** Fold decay into row @p row: decayed charged cells revert to
     *  the row's default value in the stored image. */
    void materializeDecay(std::size_t row);

    /** Recharge row @p row: clear stress, advance the charge epoch
     *  (which reselects all of the row's effective retentions). */
    void rechargeRow(std::size_t row);

    DramConfig cfg;
    RetentionModel model;

    BitVec stored;                    //!< logical values as written
    std::vector<double> stress;       //!< per-row accumulated ref-temp time
    std::vector<std::uint64_t> epoch; //!< per-row charge-interval counter
    std::uint64_t trialKeyVal = 0;    //!< key set by reseedTrial()
    std::uint64_t trialStreamBase;    //!< cached noise stream base
};

} // namespace pcause

#endif // PCAUSE_DRAM_DRAM_CHIP_HH
