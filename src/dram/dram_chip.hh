/**
 * @file
 * Behavioural model of a single DRAM device.
 *
 * DramChip simulates the decay mechanics the paper's platform
 * exposes by disabling automatic refresh: cells written opposite
 * their default value hold charge that leaks away; once the
 * accumulated unrefreshed time at temperature exceeds a cell's
 * effective retention, the cell reverts to its default value. A
 * refresh (or write, which is a row read-modify-write) locks in
 * whatever value the row currently holds — a decayed cell is
 * refreshed at its default value, so errors persist.
 *
 * Temperature is handled as accumulated "stress": elapsed wall time
 * is scaled by the Arrhenius-style acceleration factor and compared
 * against reference-temperature retention, so arbitrary temperature
 * profiles are supported.
 */

#ifndef PCAUSE_DRAM_DRAM_CHIP_HH
#define PCAUSE_DRAM_DRAM_CHIP_HH

#include <cstdint>
#include <vector>

#include "dram/dram_config.hh"
#include "dram/retention_model.hh"
#include "util/bitvec.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace pcause
{

/** One simulated DRAM device with refresh disabled by default. */
class DramChip
{
  public:
    /**
     * Manufacture a chip.
     *
     * @param config  device geometry and physics parameters
     * @param chip_seed  manufacturing seed; equal seeds model the
     *                   same physical chip
     */
    DramChip(const DramConfig &config, std::uint64_t chip_seed);

    /** Device geometry and physics parameters. */
    const DramConfig &config() const { return cfg; }

    /** The chip's manufacturing-time retention characteristics. */
    const RetentionModel &retention() const { return model; }

    /** Manufacturing seed (doubles as a chip identity in tests). */
    std::uint64_t chipSeed() const { return model.chipSeed(); }

    /** Total bits. */
    std::size_t size() const { return cfg.totalBits(); }

    /** Row index holding bit @p cell. */
    std::size_t rowOf(std::size_t cell) const
    {
        return cell / cfg.rowBits();
    }

    /**
     * Reseed the per-trial noise stream. Call once per experimental
     * trial to make trials reproducible yet independent.
     */
    void reseedTrial(std::uint64_t trial_key);

    /** Overwrite the entire device; all rows are freshly charged. */
    void write(const BitVec &data);

    /**
     * Overwrite bits [start, start+data.size()). Rows touched by the
     * range undergo DRAM write semantics: the whole row is read
     * (materializing any decay in untouched cells), then rewritten,
     * recharging all its non-default cells.
     */
    void writeRegion(std::size_t start, const BitVec &data);

    /**
     * Non-intrusive observation of current logical contents:
     * decayed cells read as their default value. Does not refresh.
     */
    BitVec peek() const;

    /** Observation of bits [start, start+len) without refreshing. */
    BitVec peekRegion(std::size_t start, std::size_t len) const;

    /**
     * Read the whole device with real DRAM semantics: the read
     * refreshes every row, locking decayed cells at their default
     * value and recharging surviving cells.
     */
    BitVec read();

    /** Refresh a single row (read followed by write, per the paper). */
    void refreshRow(std::size_t row);

    /** Refresh every row. */
    void refreshAll();

    /**
     * Let @p dt wall-clock seconds pass at temperature @p temp with
     * automatic refresh disabled.
     */
    void elapse(Seconds dt, Celsius temp);

    /**
     * Accumulate unrefreshed hold time on a single row — the
     * primitive behind multi-rate refresh schemes (RAIDR-style
     * controllers refresh different rows at different periods, so
     * rows age at different effective rates between their own
     * refreshes).
     */
    void elapseRow(std::size_t row, Seconds dt, Celsius temp);

    /**
     * The worst-case test pattern: every cell written opposite its
     * default value, so every cell is charged and able to decay
     * (paper Section 6).
     */
    BitVec worstCasePattern() const;

    /** Number of currently-decayed cells. */
    std::size_t decayedCount() const;

  private:
    /** Fold decay into row @p row: decide which charged cells have
     *  exceeded their effective retention under current stress. */
    void materializeDecay(std::size_t row);

    /** Recharge row @p row: clear stress, resample effective
     *  retention for all charged cells. */
    void rechargeRow(std::size_t row);

    bool isCharged(std::size_t cell) const
    {
        return stored.get(cell) != cfg.defaultBit(rowOf(cell)) &&
            !dead.get(cell);
    }

    DramConfig cfg;
    RetentionModel model;

    BitVec stored;               //!< logical values as written
    BitVec dead;                 //!< cells that already decayed
    std::vector<float> effRet;   //!< per-cell effective retention
    std::vector<double> stress;  //!< per-row accumulated ref-temp time
    Rng trialRng;                //!< per-interval noise source
};

} // namespace pcause

#endif // PCAUSE_DRAM_DRAM_CHIP_HH
