#include "dram/energy_model.hh"

#include "dram/refresh_controller.hh"
#include "dram/retention_model.hh"
#include "util/logging.hh"

namespace pcause
{

EnergyModel::EnergyModel(const EnergyParams &params)
    : prm(params)
{
    if (prm.refreshShareAtJedec < 0.0 || prm.refreshShareAtJedec > 1.0)
        fatal("EnergyModel: refresh share must be in [0,1]");
    if (prm.nominalVolts <= 0.0)
        fatal("EnergyModel: nominal voltage must be positive");
}

double
EnergyModel::relativePower(Seconds interval) const
{
    PC_ASSERT(interval > 0.0, "refresh interval must be positive");
    const double background = 1.0 - prm.refreshShareAtJedec;
    const double refresh =
        prm.refreshShareAtJedec * (jedecRefreshPeriod / interval);
    return background + refresh;
}

double
EnergyModel::relativePowerVoltage(double volts) const
{
    PC_ASSERT(volts > 0.0, "voltage must be positive");
    const double ratio = volts / prm.nominalVolts;
    return ratio * ratio; // refresh rate unchanged, V^2 scaling
}

double
EnergyModel::savingFraction(Seconds interval) const
{
    return 1.0 - relativePower(interval);
}

Seconds
EnergyModel::intervalForAccuracy(const RetentionModel &model,
                                 double accuracy, Celsius temp) const
{
    return RefreshController(accuracy).analyticInterval(model, temp);
}

} // namespace pcause
