/**
 * @file
 * Mathematical model of a large approximate DRAM (paper Section 7.1,
 * used for the Section 7.6 end-to-end experiment).
 *
 * Simulating every cell of a 1 GB module is unnecessary: the paper
 * itself drives its commodity-system experiment from a mathematical
 * model of approximate DRAM. ModeledDram reproduces that model: each
 * 4 KB page's volatile-cell set is a pure function of (chip seed,
 * page index), drawn lazily, so pages cost nothing until observed.
 *
 * A per-page Feistel permutation orders the page's cells by
 * volatility; the error set at accuracy a is the first
 * (1-a) * pageBits entries of that order. The order-of-failure
 * property of real DRAM (Figure 10: errors at 99% accuracy are a
 * subset of errors at 95%, which are a subset of 90%) therefore
 * holds by construction.
 */

#ifndef PCAUSE_DRAM_MODELED_DRAM_HH
#define PCAUSE_DRAM_MODELED_DRAM_HH

#include <cstdint>

#include "util/sparse_bitset.hh"

namespace pcause
{

/** Parameters of a modeled large approximate memory. */
struct ModeledDramParams
{
    /** Total capacity in bits (default 1 GB, the Section 7.6 size). */
    std::uint64_t totalBits = 8ull << 30;

    /** Page size in bits (4 KB pages; must be a power of two). */
    std::uint32_t pageBits = 32768;

    /**
     * Lowest supported accuracy: cells beyond this volatility
     * fraction never decay at the modeled refresh rates.
     */
    double accuracyFloor = 0.85;

    /**
     * Per-observation probability that a fingerprint cell fails to
     * show (trial noise); matches the ~2% unpredictable cells of
     * Figure 8.
     */
    double flickerProb = 0.02;

    /** Expected spurious error bits per observed page. */
    double spuriousPerPage = 0.5;
};

/** Lazily evaluated per-page error model of a large DRAM. */
class ModeledDram
{
  public:
    /**
     * @param params     model geometry and noise parameters
     * @param chip_seed  manufacturing identity; equal seeds model
     *                   the same physical module
     */
    ModeledDram(const ModeledDramParams &params, std::uint64_t chip_seed);

    /** Model parameters. */
    const ModeledDramParams &params() const { return prm; }

    /** Manufacturing seed. */
    std::uint64_t chipSeed() const { return seed; }

    /** Number of 4 KB pages. */
    std::uint64_t numPages() const { return prm.totalBits / prm.pageBits; }

    /**
     * The noise-free potential-error set of @p page at @p accuracy:
     * the positions of the (1-a) * pageBits most volatile cells.
     * Sets at lower accuracy are supersets of sets at higher
     * accuracy (order-of-failure property).
     */
    SparseBitset fingerprintSet(std::uint64_t page,
                                double accuracy) const;

    /**
     * One noisy observation of @p page's error pattern at
     * @p accuracy with worst-case (all-charged) data. Fingerprint
     * cells flicker out with flickerProb; a few spurious bits from
     * just-above-threshold cells flicker in. Deterministic in
     * (page, accuracy, trial_key).
     */
    SparseBitset observePage(std::uint64_t page, double accuracy,
                             std::uint64_t trial_key) const;

    /**
     * Volatility-ordered position @p rank within @p page: rank 0 is
     * the page's fastest-decaying cell. Bijective over the page.
     */
    std::uint32_t volatilityOrder(std::uint64_t page,
                                  std::uint32_t rank) const;

  private:
    /** Number of error cells per page at @p accuracy. */
    std::uint32_t errorCount(double accuracy) const;

    ModeledDramParams prm;
    std::uint64_t seed;
    unsigned domainBits; //!< log2(pageBits)
};

} // namespace pcause

#endif // PCAUSE_DRAM_MODELED_DRAM_HH
