/**
 * @file
 * Flikker-style partitioned approximate memory.
 *
 * Flikker (Liu et al., the paper's reference [18]) partitions DRAM
 * into a high-refresh zone for critical data and a low-refresh zone
 * for error-tolerant data. It is both a baseline approximate-memory
 * design from the related work and the concrete mechanism behind
 * the paper's data-segregation defense (Section 8.2.1): sensitive
 * data in the exact zone forfeits its energy savings, while
 * anything placed in the approximate zone still carries the chip's
 * fingerprint.
 */

#ifndef PCAUSE_DRAM_FLIKKER_MEMORY_HH
#define PCAUSE_DRAM_FLIKKER_MEMORY_HH

#include <cstdint>

#include "dram/dram_chip.hh"
#include "dram/refresh_controller.hh"
#include "util/bitvec.hh"
#include "util/units.hh"

namespace pcause
{

/** Which zone a buffer is placed in. */
enum class FlikkerZone
{
    Exact,   //!< high-refresh (JEDEC) zone: no data loss
    Approx,  //!< low-refresh zone: energy savings, bit errors
};

/** Partitioned approximate memory over one DRAM device. */
class FlikkerMemory
{
  public:
    /**
     * @param chip            backing device (not owned)
     * @param exact_fraction  fraction of rows given to the exact
     *                        zone (rounded to whole rows; the exact
     *                        zone occupies the low rows)
     * @param accuracy        worst-case accuracy of the approx zone
     * @param temp            operating temperature
     */
    FlikkerMemory(DramChip &chip, double exact_fraction,
                  double accuracy, Celsius temp = 40.0);

    /** Capacity of a zone in bits. */
    std::size_t zoneSize(FlikkerZone zone) const;

    /** First bit index of a zone. */
    std::size_t zoneStart(FlikkerZone zone) const;

    /** Store @p data at the start of @p zone. */
    void store(FlikkerZone zone, const BitVec &data);

    /**
     * Hold for one approximate-zone refresh interval — during which
     * the exact zone is refreshed on the JEDEC schedule and loses
     * nothing — then read @p len bits from @p zone.
     */
    BitVec load(FlikkerZone zone, std::size_t len);

    /**
     * Convenience: store in @p zone, hold one interval, read back.
     * @p trial_key reseeds the trial noise.
     */
    BitVec roundTrip(FlikkerZone zone, const BitVec &data,
                     std::uint64_t trial_key);

    /**
     * Fraction of refresh energy saved versus an all-exact device:
     * the approximate zone's rows refresh slower by the interval
     * ratio, the exact zone's do not.
     */
    double refreshEnergySaving() const;

    /** The approximate zone's wall-clock refresh interval. */
    Seconds approxInterval() const;

  private:
    DramChip &dev;
    std::size_t exactRows;
    RefreshController controller;
    Celsius temp;
};

} // namespace pcause

#endif // PCAUSE_DRAM_FLIKKER_MEMORY_HH
