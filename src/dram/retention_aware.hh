/**
 * @file
 * Retention-aware refresh baselines from the related work.
 *
 * The paper positions itself against the energy-saving refresh
 * schemes of Section 9.2. Two are implemented so the benches can
 * ask whether smarter refresh changes the privacy story:
 *
 * - RAIDR (Liu et al. [17]): bin rows by their weakest cell and
 *   refresh each bin at its own period. Run exactly (margin < 1)
 *   it loses nothing while saving most refreshes; run past margin
 *   1 it produces errors concentrated in the weakest rows — still
 *   a chip-specific, repeatable pattern.
 * - RAPID (Venkatesan et al. [40]): rank pages by retention and
 *   populate best-first, so the refresh period is set by the worst
 *   *populated* page rather than the worst page on the chip.
 */

#ifndef PCAUSE_DRAM_RETENTION_AWARE_HH
#define PCAUSE_DRAM_RETENTION_AWARE_HH

#include <cstdint>
#include <vector>

#include "dram/dram_chip.hh"
#include "util/bitvec.hh"
#include "util/units.hh"

namespace pcause
{

/** RAIDR-style multi-rate refresh controller. */
class RaidrController
{
  public:
    /**
     * @param model     the chip's retention map (profiled, as RAIDR
     *                  profiles chips at boot)
     * @param num_bins  number of refresh-rate bins
     * @param margin    fraction of a bin's weakest retention used as
     *                  its refresh period; < 1 is exact operation,
     *                  > 1 deliberately over-stretches (approximate)
     */
    RaidrController(const RetentionModel &model, unsigned num_bins,
                    double margin);

    /** Number of bins. */
    unsigned numBins() const { return bins; }

    /** Bin assigned to @p row. */
    unsigned rowBin(std::size_t row) const { return binOf[row]; }

    /** Wall-clock refresh period of @p row at @p temp. */
    Seconds rowInterval(std::size_t row, Celsius temp) const;

    /**
     * Refresh-energy saving versus uniform JEDEC refresh: average
     * of per-row rate reductions (refresh energy scales with rate).
     */
    double refreshEnergySaving(Celsius temp) const;

    /**
     * Run one multi-rate refresh cycle on @p chip: write the
     * worst-case pattern, age each row by its own period, read
     * back. Returns the error bitstring.
     */
    BitVec runWorstCaseTrial(DramChip &chip, Celsius temp,
                             std::uint64_t trial_key) const;

  private:
    const RetentionModel &retention;
    unsigned bins;
    double margin;
    std::vector<unsigned> binOf;        //!< per-row bin
    std::vector<Seconds> binRetention;  //!< weakest retention per bin
};

/** RAPID-style retention-ranked page placement. */
class RapidPlacer
{
  public:
    /**
     * @param model      the chip's retention map
     * @param page_bits  page size used for ranking
     */
    RapidPlacer(const RetentionModel &model, std::size_t page_bits);

    /** Number of pages on the chip. */
    std::size_t numPages() const { return pageWorst.size(); }

    /**
     * Pages ordered best-retention-first — the population order
     * RAPID uses.
     */
    const std::vector<std::size_t> &rankedPages() const
    {
        return ranking;
    }

    /** Weakest-cell retention of @p page at reference temperature. */
    Seconds pageWorstRetention(std::size_t page) const
    {
        return pageWorst[page];
    }

    /**
     * Exact refresh period when the best @p populated pages hold
     * data: @p margin times the worst populated page's retention,
     * scaled to @p temp.
     */
    Seconds refreshInterval(std::size_t populated, double margin,
                            Celsius temp) const;

  private:
    const RetentionModel &retention;
    std::size_t pageBits;
    std::vector<Seconds> pageWorst;     //!< per-page weakest retention
    std::vector<std::size_t> ranking;   //!< pages, best first
};

} // namespace pcause

#endif // PCAUSE_DRAM_RETENTION_AWARE_HH
