/**
 * @file
 * Approximate-DRAM refresh control.
 *
 * The paper's approximate memory "adjusts its refresh rate to
 * maintain a desired accuracy across changes in temperature"
 * (Section 7.3). RefreshController implements that control loop two
 * ways: an analytic shortcut using the chip's retention quantiles,
 * and the measurement-driven calibration a real deployment would
 * run (write worst-case data, hold, read back, count errors, binary
 * search on the interval).
 */

#ifndef PCAUSE_DRAM_REFRESH_CONTROLLER_HH
#define PCAUSE_DRAM_REFRESH_CONTROLLER_HH

#include "util/units.hh"

namespace pcause
{

class DramChip;
class RetentionModel;

/** Result of one measurement-driven calibration. */
struct CalibrationResult
{
    Seconds interval;        //!< chosen wall-clock refresh interval
    double measuredError;    //!< worst-case error rate at interval
    unsigned trials;         //!< number of measurement trials used
};

/** Adaptive refresh-rate controller targeting a fixed accuracy. */
class RefreshController
{
  public:
    /**
     * @param accuracy  target fraction of correct bits with
     *                  worst-case data (e.g.\ 0.99 for "1% error")
     */
    explicit RefreshController(double accuracy);

    /** Target accuracy. */
    double accuracy() const { return targetAccuracy; }

    /** Target worst-case error rate (1 - accuracy). */
    double errorRate() const { return 1.0 - targetAccuracy; }

    /**
     * Analytic refresh interval at temperature @p temp: the stress
     * quantile of the retention map divided by the thermal
     * acceleration. This is the fixed point the measurement loop
     * converges to, exposed directly for fast experimentation.
     */
    Seconds analyticInterval(const RetentionModel &model,
                             Celsius temp) const;

    /**
     * Measurement-driven calibration against a live chip, as a real
     * deployment (with no access to the retention map) would do:
     * binary search on the interval, measuring worst-case error each
     * step. Leaves the chip refreshed with its previous content
     * destroyed.
     *
     * @param chip       the device to calibrate against
     * @param temp       operating temperature during calibration
     * @param tolerance  acceptable relative error-rate miss
     * @param max_trials  cap on measurement iterations
     */
    CalibrationResult calibrate(DramChip &chip, Celsius temp,
                                double tolerance = 0.05,
                                unsigned max_trials = 32) const;

    /**
     * One worst-case measurement: write the all-charged pattern,
     * hold for @p interval at @p temp, read back, return the error
     * fraction.
     */
    static double measureErrorRate(DramChip &chip, Seconds interval,
                                   Celsius temp);

  private:
    double targetAccuracy;
};

} // namespace pcause

#endif // PCAUSE_DRAM_REFRESH_CONTROLLER_HH
