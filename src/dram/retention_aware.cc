#include "dram/retention_aware.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace pcause
{

RaidrController::RaidrController(const RetentionModel &model,
                                 unsigned num_bins, double margin_)
    : retention(model), bins(num_bins), margin(margin_)
{
    if (num_bins == 0)
        fatal("RaidrController: need at least one bin");
    if (margin_ <= 0.0)
        fatal("RaidrController: margin must be positive");

    const DramConfig &cfg = model.config();

    // Per-row weakest retention, then equal-population binning by
    // rank (RAIDR bins by retention class; equal-population bins
    // keep every bin meaningful on any distribution). Bin on the
    // guaranteed lower bound — covering trial noise and VRT fast
    // states — so a sub-unit margin really is exact operation
    // rather than a bet on the noise draw.
    std::vector<Seconds> row_worst(cfg.rows);
    for (std::size_t row = 0; row < cfg.rows; ++row)
        row_worst[row] = model.rowMinEffective(row);

    std::vector<std::size_t> order(cfg.rows);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return row_worst[a] < row_worst[b];
              });

    binOf.resize(cfg.rows);
    binRetention.assign(bins, 0.0);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const unsigned bin = static_cast<unsigned>(
            rank * bins / order.size());
        binOf[order[rank]] = bin;
        // First (weakest) row entering a bin defines its floor.
        if (binRetention[bin] == 0.0)
            binRetention[bin] = row_worst[order[rank]];
    }
}

Seconds
RaidrController::rowInterval(std::size_t row, Celsius temp) const
{
    PC_ASSERT(row < binOf.size(), "row out of range");
    return margin * binRetention[binOf[row]] / retention.accel(temp);
}

double
RaidrController::refreshEnergySaving(Celsius temp) const
{
    // Refresh energy per row ~ refresh rate. Compare against the
    // uniform JEDEC baseline.
    double relative = 0.0;
    for (std::size_t row = 0; row < binOf.size(); ++row)
        relative += jedecRefreshPeriod / rowInterval(row, temp);
    relative /= binOf.size();
    return 1.0 - relative;
}

BitVec
RaidrController::runWorstCaseTrial(DramChip &chip, Celsius temp,
                                   std::uint64_t trial_key) const
{
    PC_ASSERT(&chip.retention() == &retention ||
              chip.retention().chipSeed() == retention.chipSeed(),
              "controller profiled for a different chip");
    chip.reseedTrial(trial_key);
    const BitVec pattern = chip.worstCasePattern();
    chip.write(pattern);
    for (std::size_t row = 0; row < chip.config().rows; ++row)
        chip.elapseRow(row, rowInterval(row, temp), temp);
    const BitVec out = chip.peek();
    chip.refreshAll();
    return out ^ pattern;
}

RapidPlacer::RapidPlacer(const RetentionModel &model,
                         std::size_t page_bits)
    : retention(model), pageBits(page_bits)
{
    if (page_bits == 0 || model.size() % page_bits != 0)
        fatal("RapidPlacer: page size must divide the chip");

    const std::size_t pages = model.size() / page_bits;
    pageWorst.resize(pages);
    for (std::size_t p = 0; p < pages; ++p) {
        Seconds worst = model.baseRetention(p * page_bits);
        for (std::size_t i = 1; i < page_bits; ++i) {
            worst = std::min<Seconds>(
                worst, model.baseRetention(p * page_bits + i));
        }
        pageWorst[p] = worst;
    }

    ranking.resize(pages);
    std::iota(ranking.begin(), ranking.end(), 0);
    std::sort(ranking.begin(), ranking.end(),
              [&](std::size_t a, std::size_t b) {
                  return pageWorst[a] > pageWorst[b];
              });
}

Seconds
RapidPlacer::refreshInterval(std::size_t populated, double margin,
                             Celsius temp) const
{
    PC_ASSERT(populated > 0 && populated <= ranking.size(),
              "populated page count out of range");
    PC_ASSERT(margin > 0.0, "margin must be positive");
    const Seconds worst = pageWorst[ranking[populated - 1]];
    return margin * worst / retention.accel(temp);
}

} // namespace pcause
