/**
 * @file
 * User-facing approximate-memory abstraction.
 *
 * ApproxMemory is what an approximate computing system exposes to an
 * application: store data, get it back later slightly wrong, at an
 * energy cost controlled by the accuracy knob. Internally it couples
 * a DramChip with a RefreshController so that the refresh interval
 * tracks the accuracy target across temperature changes — exactly
 * the system the paper fingerprints.
 */

#ifndef PCAUSE_DRAM_APPROX_MEMORY_HH
#define PCAUSE_DRAM_APPROX_MEMORY_HH

#include <cstdint>

#include "dram/dram_chip.hh"
#include "dram/refresh_controller.hh"
#include "util/bitvec.hh"
#include "util/units.hh"

namespace pcause
{

/** Approximate storage backed by an under-refreshed DRAM chip. */
class ApproxMemory
{
  public:
    /**
     * @param chip      backing device (not owned)
     * @param accuracy  target worst-case accuracy, e.g.\ 0.99
     * @param temp      initial operating temperature
     */
    ApproxMemory(DramChip &chip, double accuracy, Celsius temp = 40.0);

    /** Capacity in bits. */
    std::size_t size() const { return dev.size(); }

    /** Backing chip (for characterization and inspection). */
    DramChip &chip() { return dev; }
    const DramChip &chip() const { return dev; }

    /** Change the accuracy target; takes effect on the next hold. */
    void setAccuracy(double accuracy);

    /** Current accuracy target. */
    double accuracy() const { return controller.accuracy(); }

    /**
     * Change the operating temperature. The controller re-derives
     * the refresh interval so the accuracy target is maintained,
     * mirroring the paper's adaptive implementation (Section 7.3).
     */
    void setTemperature(Celsius temp);

    /** Current operating temperature. */
    Celsius temperature() const { return temp; }

    /**
     * Wall-clock refresh interval currently in force (derived from
     * the accuracy target and temperature).
     */
    Seconds refreshInterval() const;

    /**
     * Estimated refresh-energy saving versus exact operation: the
     * JEDEC 64 ms baseline divided by the approximate interval.
     * This is the "why" of approximate DRAM — the benches report it
     * alongside the privacy loss.
     */
    double refreshEnergySavingFactor() const;

    /** Store @p data (full-size write, freshly charged). */
    void store(const BitVec &data);

    /**
     * Hold stored data for exactly one refresh interval and return
     * the (possibly degraded) contents. The device is refreshed
     * afterwards, locking in any errors, as real hardware would.
     */
    BitVec load();

    /**
     * Convenience: store @p data, hold for one interval, read back.
     * @p trial_key reseeds the trial-noise stream so repeated round
     * trips are independent but reproducible.
     */
    BitVec roundTrip(const BitVec &data, std::uint64_t trial_key);

  private:
    DramChip &dev;
    RefreshController controller;
    Celsius temp;
};

} // namespace pcause

#endif // PCAUSE_DRAM_APPROX_MEMORY_HH
