#include "dram/modeled_dram.hh"

#include <bit>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace pcause
{

ModeledDram::ModeledDram(const ModeledDramParams &params,
                         std::uint64_t chip_seed)
    : prm(params), seed(chip_seed)
{
    if (!std::has_single_bit(prm.pageBits))
        fatal("ModeledDram: pageBits must be a power of two");
    if (prm.totalBits % prm.pageBits != 0)
        fatal("ModeledDram: totalBits must be a multiple of pageBits");
    if (prm.accuracyFloor <= 0.0 || prm.accuracyFloor >= 1.0)
        fatal("ModeledDram: accuracyFloor must be in (0,1)");
    domainBits = std::countr_zero(prm.pageBits);
}

std::uint32_t
ModeledDram::errorCount(double accuracy) const
{
    if (accuracy < prm.accuracyFloor)
        fatal("ModeledDram: accuracy %.3f below model floor %.3f",
              accuracy, prm.accuracyFloor);
    PC_ASSERT(accuracy < 1.0, "accuracy must be < 1");
    return static_cast<std::uint32_t>(
        std::llround((1.0 - accuracy) * prm.pageBits));
}

std::uint32_t
ModeledDram::volatilityOrder(std::uint64_t page,
                             std::uint32_t rank) const
{
    PC_ASSERT(rank < prm.pageBits, "rank beyond page");

    // A balanced Feistel network keyed by (chip seed, page) gives a
    // pseudo-random bijection over a power-of-four domain covering
    // the page; cycle-walking restricts it to [0, pageBits). Ranks
    // therefore map to distinct positions with no scratch storage —
    // pages are never materialized.
    const unsigned half_bits = (domainBits + 1) / 2;
    const std::uint32_t half_mask = (1u << half_bits) - 1;
    const std::uint64_t page_key = mix64(seed, page);

    auto permute_once = [&](std::uint32_t x) {
        std::uint32_t l = (x >> half_bits) & half_mask;
        std::uint32_t r = x & half_mask;
        for (unsigned round = 0; round < 4; ++round) {
            std::uint32_t f = static_cast<std::uint32_t>(
                mix64(page_key, (std::uint64_t(round) << 32) | r)) &
                half_mask;
            std::uint32_t nl = r;
            std::uint32_t nr = l ^ f;
            l = nl;
            r = nr;
        }
        return (l << half_bits) | r;
    };

    std::uint32_t x = rank;
    do {
        x = permute_once(x);
    } while (x >= prm.pageBits);
    return x;
}

SparseBitset
ModeledDram::fingerprintSet(std::uint64_t page, double accuracy) const
{
    const std::uint32_t n = errorCount(accuracy);
    std::vector<std::uint32_t> pos;
    pos.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        pos.push_back(volatilityOrder(page, i));
    return SparseBitset(prm.pageBits, std::move(pos));
}

SparseBitset
ModeledDram::observePage(std::uint64_t page, double accuracy,
                         std::uint64_t trial_key) const
{
    const std::uint32_t n = errorCount(accuracy);
    Rng rng(mix64(mix64(seed, page), trial_key));

    std::vector<std::uint32_t> pos;
    pos.reserve(n + 4);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!rng.chance(prm.flickerProb))
            pos.push_back(volatilityOrder(page, i));
    }

    // Spurious errors come from cells just above the decay threshold
    // (the next entries in the volatility order), not from arbitrary
    // positions — noise in real DRAM is still volatility-ranked.
    const std::uint32_t ceiling = static_cast<std::uint32_t>(
        (1.0 - prm.accuracyFloor) * prm.pageBits);
    double expected = prm.spuriousPerPage;
    while (expected > 0.0 && n < ceiling) {
        if (rng.chance(std::min(expected, 1.0))) {
            std::uint32_t rank = n + static_cast<std::uint32_t>(
                rng.nextBelow(std::max<std::uint64_t>(ceiling - n, 1)));
            pos.push_back(volatilityOrder(page, rank));
        }
        expected -= 1.0;
    }

    return SparseBitset(prm.pageBits, std::move(pos));
}

} // namespace pcause
